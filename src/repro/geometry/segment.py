"""Line segments.

Segments show up in three places: polygon edges (containment tests), walls
and doors of the floor plan, and the legs of simulated trajectories.  The
movement-detection model additionally needs the times at which a segment,
traversed at constant speed, enters and leaves a circle — that computation
lives here as :meth:`Segment.circle_intersection_fractions`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import EPSILON, Point

__all__ = ["Segment"]


@dataclass(frozen=True, slots=True)
class Segment:
    """An immutable directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    def length(self) -> float:
        return self.start.distance_to(self.end)

    def direction(self) -> Point:
        """Unit direction vector (zero vector for degenerate segments)."""
        length = self.length()
        if length <= EPSILON:
            return Point(0.0, 0.0)
        delta = self.end - self.start
        return Point(delta.x / length, delta.y / length)

    def point_at(self, fraction: float) -> Point:
        """Point at parameter ``fraction`` in [0, 1] along the segment."""
        return self.start.lerp(self.end, fraction)

    def midpoint(self) -> Point:
        return self.start.midpoint(self.end)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the closest segment point."""
        return point.distance_to(self.closest_point_to(point))

    def closest_point_to(self, point: Point) -> Point:
        """The segment point closest to ``point``."""
        delta = self.end - self.start
        denominator = delta.dot(delta)
        if denominator <= EPSILON:
            return self.start
        t = (point - self.start).dot(delta) / denominator
        t = min(1.0, max(0.0, t))
        return self.point_at(t)

    # ------------------------------------------------------------------
    # Intersections
    # ------------------------------------------------------------------

    def intersects_segment(self, other: "Segment") -> bool:
        """Whether the two closed segments share at least one point."""

        def orientation(a: Point, b: Point, c: Point) -> int:
            value = (b - a).cross(c - a)
            if value > EPSILON:
                return 1
            if value < -EPSILON:
                return -1
            return 0

        def on_segment(a: Point, b: Point, c: Point) -> bool:
            return (
                min(a.x, b.x) - EPSILON <= c.x <= max(a.x, b.x) + EPSILON
                and min(a.y, b.y) - EPSILON <= c.y <= max(a.y, b.y) + EPSILON
            )

        o1 = orientation(self.start, self.end, other.start)
        o2 = orientation(self.start, self.end, other.end)
        o3 = orientation(other.start, other.end, self.start)
        o4 = orientation(other.start, other.end, self.end)

        if o1 != o2 and o3 != o4:
            return True
        if o1 == 0 and on_segment(self.start, self.end, other.start):
            return True
        if o2 == 0 and on_segment(self.start, self.end, other.end):
            return True
        if o3 == 0 and on_segment(other.start, other.end, self.start):
            return True
        if o4 == 0 and on_segment(other.start, other.end, self.end):
            return True
        return False

    def circle_intersection_fractions(
        self, center: Point, radius: float
    ) -> tuple[float, float] | None:
        """The parameter interval of this segment inside a circle.

        Returns ``(f_in, f_out)`` with ``0 <= f_in <= f_out <= 1`` such that
        the segment point lies within distance ``radius`` of ``center``
        exactly for parameters in ``[f_in, f_out]``, or ``None`` when the
        segment never enters the circle.  Used to compute, analytically, the
        time window during which a moving object is inside a proximity
        detection range.
        """
        delta = self.end - self.start
        offset = self.start - center
        a = delta.dot(delta)
        if a <= EPSILON:
            # Degenerate segment: inside iff the single point is inside.
            if offset.norm() <= radius:
                return (0.0, 1.0)
            return None
        b = 2.0 * offset.dot(delta)
        c = offset.dot(offset) - radius * radius
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0.0:
            return None
        sqrt_disc = math.sqrt(discriminant)
        t_in = (-b - sqrt_disc) / (2.0 * a)
        t_out = (-b + sqrt_disc) / (2.0 * a)
        t_in = max(t_in, 0.0)
        t_out = min(t_out, 1.0)
        if t_in > t_out:
            return None
        return (t_in, t_out)
