"""Extended ellipses between two consecutive detections.

Between two consecutive tracking records the object leaves device ``dev_i``'s
range at ``rd_i.t_e`` and enters ``dev_j``'s range at ``rd_j.t_s``.  With
maximum speed ``V_max`` its location over the gap is constrained by the
*extended ellipse* (paper, Section 3.1.3, after [Pfoser & Jensen]): the set
of points reachable on a path that starts at the boundary of ``dev_i``'s
range and ends at the boundary of ``dev_j``'s range with total length at
most ``V_max * (rd_j.t_s - rd_i.t_e)``.

Formally, with ``dist(p, C) = max(0, |p - c| - r)`` the distance from a
point to a disk, the extended ellipse is::

    { p : dist(p, C_i) + dist(p, C_j) <= V_max * gap }

which is the classic two-focus ellipse definition generalised to circular
foci.  ``Theta(dev_i, dev_j, ...)`` in the paper denotes the *complete*
region covered by the extended ellipse, i.e. including the two detection
disks; :attr:`ExtendedEllipse.gap_region` additionally exposes the variant
with the two disks excluded (where the object can be while *undetected*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .circle import Circle
from .mbr import Mbr
from .point import EPSILON, Point
from .region import Region, RegionDifference, RegionUnion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = ["ExtendedEllipse"]


@dataclass(frozen=True)
class ExtendedEllipse(Region):
    """The complete region ``Theta`` between two circular foci.

    Parameters
    ----------
    focus_a, focus_b:
        The detection ranges of the two devices involved.
    path_budget:
        The maximum travel distance between the two range boundaries,
        ``V_max * (rd_j.t_s - rd_i.t_e)``.  A negative budget is clamped to
        zero (it can arise from floating point noise on back-to-back
        records).
    """

    focus_a: Circle
    focus_b: Circle
    path_budget: float
    _mbr: Mbr | None = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        budget = max(0.0, self.path_budget)
        object.__setattr__(self, "path_budget", budget)
        object.__setattr__(self, "_mbr", self._compute_mbr())

    def _compute_mbr(self) -> Mbr | None:
        if self.is_infeasible():
            return None
        # Every point p satisfies dist(p, A) <= budget and dist(p, B) <=
        # budget, so the region lies within both inflated disks; intersecting
        # their MBRs gives a sound (and reasonably tight) bound.
        mbr_a = self.focus_a.expanded(self.path_budget).mbr
        mbr_b = self.focus_b.expanded(self.path_budget).mbr
        return mbr_a.intersection(mbr_b)

    def is_infeasible(self) -> bool:
        """Whether no point can satisfy the budget.

        The tightest possible path between the two boundaries is the
        straight gap between the disks; a budget below that leaves the
        region empty.  (With consistent tracking data this never happens.)
        """
        gap = (
            self.focus_a.center.distance_to(self.focus_b.center)
            - self.focus_a.radius
            - self.focus_b.radius
        )
        return gap - EPSILON > self.path_budget

    @property
    def mbr(self) -> Mbr | None:
        return self._mbr

    def contains(self, point: Point) -> bool:
        if self._mbr is None:
            return False
        total = self.focus_a.distance_to_point(point) + self.focus_b.distance_to_point(
            point
        )
        return total <= self.path_budget + EPSILON

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        if self._mbr is None:
            return np.zeros(len(xs), dtype=bool)
        dist_a = np.hypot(xs - self.focus_a.center.x, ys - self.focus_a.center.y)
        dist_b = np.hypot(xs - self.focus_b.center.x, ys - self.focus_b.center.y)
        total = np.maximum(dist_a - self.focus_a.radius, 0.0) + np.maximum(
            dist_b - self.focus_b.radius, 0.0
        )
        return total <= self.path_budget + EPSILON

    @property
    def gap_region(self) -> Region:
        """The extended ellipse with the two detection disks excluded.

        While the object is between the two detections it is, by definition
        of symbolic tracking, outside both ranges (it would otherwise still
        be detected); this variant captures exactly that.
        """
        return RegionDifference(self, RegionUnion((self.focus_a, self.focus_b)))
