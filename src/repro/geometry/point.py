"""Planar points and basic vector arithmetic.

The whole library works in a flat 2D world (one building floor, meters as
units), so a tiny immutable point type is all we need.  Points support the
arithmetic used by the movement simulator (interpolation along a leg) and by
the geometric predicates (distances, dot products).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Point", "EPSILON"]

#: Geometric tolerance used by predicates throughout the library.  One
#: micrometre is far below any positioning accuracy we model, so treating
#: distances within EPSILON as equal never changes a query answer.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point (or free vector) in the plane."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Dot product, treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the cross product of the two vectors."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def lerp(self, other: "Point", fraction: float) -> "Point":
        """Linear interpolation: ``self`` at 0.0, ``other`` at 1.0."""
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    def almost_equal(self, other: "Point", tolerance: float = EPSILON) -> bool:
        """Whether both coordinates match within ``tolerance``."""
        return (
            abs(self.x - other.x) <= tolerance
            and abs(self.y - other.y) <= tolerance
        )
