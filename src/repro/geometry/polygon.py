"""Simple polygons — POI extents and room footprints.

Each indoor POI has a fixed extent modelled by a polygon (paper, Section
2.2), and the floor-plan substrate models rooms and hallways as polygons
too.  The implementation supports arbitrary simple (non-self-intersecting)
polygons; containment uses the even-odd ray-cast rule with boundary points
counted as inside, and is vectorised for fast presence quadrature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .mbr import Mbr
from .point import EPSILON, Point
from .region import Region
from .segment import Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = ["Polygon"]


@dataclass(frozen=True)
class Polygon(Region):
    """An immutable simple polygon given by its vertices in order.

    Vertex order may be clockwise or counter-clockwise; areas are always
    reported as positive values.
    """

    vertices: tuple[Point, ...]
    _mbr: Mbr = field(init=False, repr=False, compare=False)
    _xs: np.ndarray = field(init=False, repr=False, compare=False)
    _ys: np.ndarray = field(init=False, repr=False, compare=False)
    _edges: tuple[Segment, ...] = field(init=False, repr=False, compare=False)

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        object.__setattr__(self, "vertices", tuple(vertices))
        object.__setattr__(self, "_mbr", Mbr.from_points(self.vertices))
        object.__setattr__(
            self, "_xs", np.array([v.x for v in self.vertices], dtype=float)
        )
        object.__setattr__(
            self, "_ys", np.array([v.y for v in self.vertices], dtype=float)
        )
        count = len(self.vertices)
        object.__setattr__(
            self,
            "_edges",
            tuple(
                Segment(self.vertices[i], self.vertices[(i + 1) % count])
                for i in range(count)
            ),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def rectangle(cls, min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """Axis-aligned rectangle polygon."""
        if min_x >= max_x or min_y >= max_y:
            raise ValueError("rectangle needs positive width and height")
        return cls(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ]
        )

    @classmethod
    def from_mbr(cls, mbr: Mbr) -> "Polygon":
        return cls.rectangle(mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y)

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """Regular polygon inscribed in the circle of ``radius``."""
        if sides < 3:
            raise ValueError("a regular polygon needs at least three sides")
        step = 2.0 * math.pi / sides
        return cls(
            [
                Point(
                    center.x + radius * math.cos(i * step),
                    center.y + radius * math.sin(i * step),
                )
                for i in range(sides)
            ]
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def mbr(self) -> Mbr:
        return self._mbr

    def edges(self) -> tuple[Segment, ...]:
        return self._edges

    def is_axis_aligned_rectangle(self) -> bool:
        """Whether the polygon is exactly its own MBR.

        Rectangle rooms are the common case in floor plans; callers use
        this to replace point-in-polygon tests by box tests.
        """
        return len(self.vertices) == 4 and abs(
            self.area() - self._mbr.area()
        ) <= EPSILON * max(1.0, self._mbr.area())

    def signed_area(self) -> float:
        """Shoelace area: positive for counter-clockwise vertex order."""
        total = 0.0
        count = len(self.vertices)
        for i in range(count):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % count]
            total += a.cross(b)
        return total / 2.0

    def area(self) -> float:
        return abs(self.signed_area())

    def perimeter(self) -> float:
        return sum(edge.length() for edge in self.edges())

    def centroid(self) -> Point:
        """Area centroid (falls back to vertex mean for degenerate area)."""
        signed = self.signed_area()
        if abs(signed) <= EPSILON:
            return Point(float(self._xs.mean()), float(self._ys.mean()))
        cx = 0.0
        cy = 0.0
        count = len(self.vertices)
        for i in range(count):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % count]
            cross = a.cross(b)
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point(cx * factor, cy * factor)

    def is_convex(self) -> bool:
        """Whether all turns go the same way (collinear runs allowed)."""
        sign = 0
        count = len(self.vertices)
        for i in range(count):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % count]
            c = self.vertices[(i + 2) % count]
            cross = (b - a).cross(c - b)
            if abs(cross) <= EPSILON:
                continue
            current = 1 if cross > 0 else -1
            if sign == 0:
                sign = current
            elif sign != current:
                return False
        return True

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains(self, point: Point) -> bool:
        if not self._mbr.contains_point(point):
            return False
        if self._on_boundary(point):
            return True
        return self._ray_cast(point.x, point.y)

    def _on_boundary(self, point: Point, tolerance: float = 1e-7) -> bool:
        return any(
            edge.distance_to_point(point) <= tolerance for edge in self.edges()
        )

    def _ray_cast(self, x: float, y: float) -> bool:
        inside = False
        count = len(self.vertices)
        j = count - 1
        for i in range(count):
            xi, yi = self.vertices[i].x, self.vertices[i].y
            xj, yj = self.vertices[j].x, self.vertices[j].y
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        inside = np.zeros(len(xs), dtype=bool)
        count = len(self.vertices)
        j = count - 1
        for i in range(count):
            xi, yi = self._xs[i], self._ys[i]
            xj, yj = self._xs[j], self._ys[j]
            crossing = (yi > ys) != (yj > ys)
            if crossing.any():
                with np.errstate(divide="ignore", invalid="ignore"):
                    x_cross = (xj - xi) * (ys - yi) / (yj - yi) + xi
                inside ^= crossing & (xs < x_cross)
            j = i
        return inside

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon([Point(v.x + dx, v.y + dy) for v in self.vertices])

    def scaled_about_centroid(self, factor: float) -> "Polygon":
        """Uniform scaling about the polygon's centroid."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        center = self.centroid()
        return Polygon(
            [center + (v - center) * factor for v in self.vertices]
        )
