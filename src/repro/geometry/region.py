"""Composable planar regions.

Uncertainty regions in the paper are boolean combinations of geometric
primitives: rings intersected with detection ranges (snapshot queries,
Section 3.1.2), unions of extended ellipses with ring intersections at the
window boundaries (interval queries, Section 3.2), all further constrained
by the indoor topology check (Section 3.3).

Rather than materialising such shapes as polygons — which would force a
fragile curved-boolean-geometry implementation — every region is a
*predicate with a bounding box*:

* :meth:`Region.contains` answers "is this point inside?" exactly, and
* :attr:`Region.mbr` bounds the region (``None`` for a provably empty one).

Boolean structure is kept symbolic via :class:`RegionIntersection`,
:class:`RegionUnion` and :class:`RegionDifference`, built with the ``&``,
``|`` and ``-`` operators.  Areas of such regions are then measured by
deterministic grid quadrature (:mod:`repro.geometry.area`), which is all the
flow definitions need — presence is a *ratio* of areas over a POI polygon.

All regions support vectorised membership via :meth:`Region.contains_many`
for fast presence estimation with NumPy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .mbr import Mbr
from .point import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = [
    "Region",
    "EmptyRegion",
    "RegionIntersection",
    "RegionUnion",
    "RegionDifference",
    "intersect_all",
    "union_all",
]


def _inside_mbr_mask(
    mbr: Mbr, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
) -> "NDArray[np.bool_]":
    """Vectorised containment of points in an MBR (with a small tolerance)."""
    tolerance = 1e-9
    return (
        (xs >= mbr.min_x - tolerance)
        & (xs <= mbr.max_x + tolerance)
        & (ys >= mbr.min_y - tolerance)
        & (ys <= mbr.max_y + tolerance)
    )


def _batch_bounds(
    xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
) -> tuple[float, float, float, float]:
    """(min_x, max_x, min_y, max_y) of a non-empty coordinate batch."""
    return float(xs.min()), float(xs.max()), float(ys.min()), float(ys.max())


def _mbr_disjoint_from_bounds(
    mbr: Mbr, bounds: tuple[float, float, float, float]
) -> bool:
    min_x, max_x, min_y, max_y = bounds
    return (
        mbr.max_x < min_x
        or mbr.min_x > max_x
        or mbr.max_y < min_y
        or mbr.min_y > max_y
    )


def _mbr_covers_bounds(
    mbr: Mbr, bounds: tuple[float, float, float, float]
) -> bool:
    min_x, max_x, min_y, max_y = bounds
    return (
        mbr.min_x <= min_x
        and mbr.max_x >= max_x
        and mbr.min_y <= min_y
        and mbr.max_y >= max_y
    )


class Region(ABC):
    """A planar point set described by a membership predicate and an MBR."""

    @property
    @abstractmethod
    def mbr(self) -> Mbr | None:
        """A bounding box of the region, or ``None`` if certainly empty.

        The MBR must be *sound*: every contained point lies within it.  It
        need not be tight.
        """

    @abstractmethod
    def contains(self, point: Point) -> bool:
        """Exact membership test for a single point."""

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        """Vectorised membership test for arrays of coordinates.

        The default implementation loops over :meth:`contains`; concrete
        shapes override it with NumPy arithmetic.
        """
        return np.fromiter(
            (self.contains(Point(float(x), float(y))) for x, y in zip(xs, ys)),
            dtype=bool,
            count=len(xs),
        )

    def is_empty(self) -> bool:
        """Whether the region is *known* to be empty (conservative)."""
        return self.mbr is None

    # ------------------------------------------------------------------
    # Boolean composition
    # ------------------------------------------------------------------

    def __and__(self, other: "Region") -> "Region":
        return RegionIntersection((self, other))

    def __or__(self, other: "Region") -> "Region":
        return RegionUnion((self, other))

    def __sub__(self, other: "Region") -> "Region":
        return RegionDifference(self, other)


class EmptyRegion(Region):
    """The empty point set."""

    @property
    def mbr(self) -> Mbr | None:
        return None

    def contains(self, point: Point) -> bool:
        return False

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        return np.zeros(len(xs), dtype=bool)

    def __repr__(self) -> str:
        return "EmptyRegion()"


class RegionIntersection(Region):
    """Intersection of two or more regions."""

    __slots__ = ("parts", "_mbr")

    def __init__(self, parts: Sequence[Region]):
        if not parts:
            raise ValueError("intersection of zero regions is undefined")
        self.parts: tuple[Region, ...] = tuple(parts)
        self._mbr = self._compute_mbr()

    def _compute_mbr(self) -> Mbr | None:
        result: Mbr | None = None
        for part in self.parts:
            part_mbr = part.mbr
            if part_mbr is None:
                return None
            result = part_mbr if result is None else result.intersection(part_mbr)
            if result is None:
                return None
        return result

    @property
    def mbr(self) -> Mbr | None:
        return self._mbr

    def contains(self, point: Point) -> bool:
        if self._mbr is None:
            return False
        return all(part.contains(point) for part in self.parts)

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        if self._mbr is None or len(xs) == 0:
            return np.zeros(len(xs), dtype=bool)
        # Reject whole batches against the intersection MBR with scalar
        # compares, and evaluate each part only on the points all previous
        # parts accepted — the expensive parts (indoor distance
        # constraints) then see small batches.
        bounds = _batch_bounds(xs, ys)
        if _mbr_disjoint_from_bounds(self._mbr, bounds):
            return np.zeros(len(xs), dtype=bool)
        if _mbr_covers_bounds(self._mbr, bounds):
            alive = np.ones(len(xs), dtype=bool)
        else:
            alive = _inside_mbr_mask(self._mbr, xs, ys)
        for part in self.parts:
            if not alive.any():
                break
            if alive.all():
                alive = part.contains_many(xs, ys).copy()
                continue
            indices = np.flatnonzero(alive)
            accepted = part.contains_many(xs[indices], ys[indices])
            alive[indices[~accepted]] = False
        return alive

    def __repr__(self) -> str:
        return f"RegionIntersection({list(self.parts)!r})"


class RegionUnion(Region):
    """Union of zero or more regions (zero parts gives the empty region)."""

    __slots__ = ("parts", "_mbr", "_part_boxes")

    def __init__(self, parts: Sequence[Region]):
        self.parts: tuple[Region, ...] = tuple(
            part for part in parts if part.mbr is not None
        )
        mbrs = [part.mbr for part in self.parts if part.mbr is not None]
        self._mbr = Mbr.union_all(mbrs) if mbrs else None
        # Part bounding boxes as one array for vectorised batch rejection:
        # interval uncertainty regions union dozens of episodes of which
        # only a few are near any given POI.
        self._part_boxes = (
            np.array(
                [[m.min_x, m.max_x, m.min_y, m.max_y] for m in mbrs], dtype=float
            )
            if mbrs
            else np.zeros((0, 4), dtype=float)
        )

    @property
    def mbr(self) -> Mbr | None:
        return self._mbr

    def contains(self, point: Point) -> bool:
        return any(part.contains(point) for part in self.parts)

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        result = np.zeros(len(xs), dtype=bool)
        if len(xs) == 0 or self._mbr is None:
            return result
        min_x, max_x, min_y, max_y = _batch_bounds(xs, ys)
        boxes = self._part_boxes
        overlapping = np.flatnonzero(
            (boxes[:, 0] <= max_x)
            & (boxes[:, 1] >= min_x)
            & (boxes[:, 2] <= max_y)
            & (boxes[:, 3] >= min_y)
        )
        bounds = (min_x, max_x, min_y, max_y)
        for part_index in overlapping:
            part = self.parts[part_index]
            part_mbr = part.mbr
            assert part_mbr is not None
            # Only evaluate the part on points not yet accepted that fall
            # inside the part's bounding box.
            candidates = ~result
            if not _mbr_covers_bounds(part_mbr, bounds):
                candidates &= _inside_mbr_mask(part_mbr, xs, ys)
            if not candidates.any():
                continue
            if candidates.all():
                result |= part.contains_many(xs, ys)
                continue
            indices = np.flatnonzero(candidates)
            accepted = part.contains_many(xs[indices], ys[indices])
            result[indices[accepted]] = True
        return result

    def __repr__(self) -> str:
        return f"RegionUnion({list(self.parts)!r})"


class RegionDifference(Region):
    """Points of ``base`` not in ``subtracted``."""

    __slots__ = ("base", "subtracted")

    def __init__(self, base: Region, subtracted: Region):
        self.base = base
        self.subtracted = subtracted

    @property
    def mbr(self) -> Mbr | None:
        # Subtraction can only shrink the region, so the base MBR is sound.
        return self.base.mbr

    def contains(self, point: Point) -> bool:
        return self.base.contains(point) and not self.subtracted.contains(point)

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        inside = self.base.contains_many(xs, ys)
        if inside.any():
            inside &= ~self.subtracted.contains_many(xs, ys)
        return inside

    def __repr__(self) -> str:
        return f"RegionDifference({self.base!r}, {self.subtracted!r})"


def intersect_all(parts: Sequence[Region]) -> Region:
    """Intersection of ``parts``; a single part is returned unchanged."""
    if not parts:
        raise ValueError("intersect_all needs at least one region")
    if len(parts) == 1:
        return parts[0]
    return RegionIntersection(parts)


def union_all(parts: Sequence[Region]) -> Region:
    """Union of ``parts``; empty input yields :class:`EmptyRegion`."""
    if not parts:
        return EmptyRegion()
    if len(parts) == 1:
        return parts[0]
    return RegionUnion(parts)
