"""Deterministic grid quadrature for region areas.

Object presence (paper, Definition 1) is ``area(UR ∩ p) / area(p)`` — a
ratio of areas over the POI polygon ``p``.  Uncertainty regions are boolean
combinations of curved primitives, so instead of exact curved-boolean
geometry we measure areas by sampling a *fixed* grid of cell centers:

* the grid is a pure function of the sampled polygon/MBR and the requested
  resolution, so every algorithm (iterative, join, with or without pruning)
  computes exactly the same presence for the same object and POI, and
* the estimate converges to the true area as the resolution grows, which
  the test suite checks against analytic circle/ellipse/polygon areas.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.contracts import check_area, check_presence
from .mbr import Mbr
from .polygon import Polygon
from .region import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = [
    "AREA_EPSILON",
    "DEFAULT_RESOLUTION",
    "floats_equal",
    "grid_points",
    "near_zero",
    "polygon_grid_points",
    "region_area",
    "intersection_fraction",
]

#: Default number of grid cells along the longer MBR side.  32 keeps the
#: presence error well under 2% for the region shapes produced by the
#: uncertainty analysis while staying fast (≤ 1024 point tests per POI).
DEFAULT_RESOLUTION = 32

#: Tolerance for area-like float comparisons.  Areas are in m² and the
#: library works at building scale (every real POI/cell area is ≫ 1e-6 m²),
#: so anything below this is quadrature round-off of a degenerate shape.
AREA_EPSILON = 1e-12


def near_zero(value: float, tolerance: float = AREA_EPSILON) -> bool:
    """Whether an area-like float is zero up to quadrature round-off.

    This is the shared epsilon helper the ``float-equality`` lint rule
    points to: never compare areas, presences or flows with ``==``.
    """
    return abs(value) <= tolerance


def floats_equal(a: float, b: float, tolerance: float = AREA_EPSILON) -> bool:
    """Tolerant equality for area-like floats (relative + absolute)."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=tolerance)


def grid_points(
    mbr: Mbr, resolution: int = DEFAULT_RESOLUTION
) -> tuple["NDArray[np.float64]", "NDArray[np.float64]", float]:
    """Cell-center sample grid over ``mbr``.

    Returns ``(xs, ys, cell_area)`` where ``xs``/``ys`` are flat coordinate
    arrays of the cell centers.  The longer MBR side gets ``resolution``
    cells; the shorter side is scaled to keep cells square-ish, with at
    least one cell per axis.
    """
    if resolution < 1:
        raise ValueError("resolution must be positive")
    width = mbr.width
    height = mbr.height
    longest = max(width, height)
    if longest <= 0.0:
        # Degenerate MBR (a point or a line): sample its center only and
        # report zero area.
        center = mbr.center
        return (
            np.array([center.x], dtype=float),
            np.array([center.y], dtype=float),
            0.0,
        )
    nx = max(1, round(resolution * width / longest))
    ny = max(1, round(resolution * height / longest))
    step_x = width / nx
    step_y = height / ny
    xs = mbr.min_x + step_x * (np.arange(nx, dtype=float) + 0.5)
    ys = mbr.min_y + step_y * (np.arange(ny, dtype=float) + 0.5)
    grid_x, grid_y = np.meshgrid(xs, ys)
    return grid_x.ravel(), grid_y.ravel(), step_x * step_y


def polygon_grid_points(
    polygon: Polygon, resolution: int = DEFAULT_RESOLUTION
) -> tuple["NDArray[np.float64]", "NDArray[np.float64]", float]:
    """Grid cell centers inside ``polygon`` plus the cell area.

    When the grid is too coarse to land a single cell center inside the
    polygon (tiny or sliver-shaped POIs), the centroid is used as a single
    representative sample with the polygon's own area as weight.
    """
    xs, ys, cell_area = grid_points(polygon.mbr, resolution)
    inside = polygon.contains_many(xs, ys)
    if not inside.any():
        centroid = polygon.centroid()
        return (
            np.array([centroid.x], dtype=float),
            np.array([centroid.y], dtype=float),
            polygon.area(),
        )
    return xs[inside], ys[inside], cell_area


def region_area(region: Region, resolution: int = DEFAULT_RESOLUTION) -> float:
    """Approximate area of ``region`` by grid quadrature over its MBR."""
    mbr = region.mbr
    if mbr is None:
        return 0.0
    xs, ys, cell_area = grid_points(mbr, resolution)
    if near_zero(cell_area):
        return 0.0
    inside = region.contains_many(xs, ys)
    return check_area(float(inside.sum()) * cell_area)


def intersection_fraction(
    region: Region, polygon: Polygon, resolution: int = DEFAULT_RESOLUTION
) -> float:
    """Fraction of ``polygon``'s area covered by ``region``.

    This is object presence (Definition 1) when ``region`` is an uncertainty
    region and ``polygon`` a POI extent.  Computed as the fraction of the
    polygon's grid samples that fall inside the region, which equals the
    area ratio in the limit of fine grids.  Always in ``[0, 1]``.
    """
    mbr = region.mbr
    if mbr is None or not mbr.intersects(polygon.mbr):
        return 0.0
    xs, ys, _ = polygon_grid_points(polygon, resolution)
    inside = region.contains_many(xs, ys)
    return check_presence(
        float(inside.sum()) / float(len(xs)), where="intersection_fraction"
    )
