"""Geometry engine: points, MBRs, shapes and composable regions.

This package provides every geometric primitive the paper's uncertainty
analysis needs — circles (detection ranges), rings (maximum-speed annuli),
extended ellipses (inter-detection regions), polygons (POI extents) — plus
boolean region composition and deterministic area quadrature.
"""

from .area import (
    AREA_EPSILON,
    DEFAULT_RESOLUTION,
    floats_equal,
    grid_points,
    intersection_fraction,
    near_zero,
    polygon_grid_points,
    region_area,
)
from .circle import Circle
from .ellipse import ExtendedEllipse
from .mbr import Mbr
from .point import EPSILON, Point
from .polygon import Polygon
from .region import (
    EmptyRegion,
    Region,
    RegionDifference,
    RegionIntersection,
    RegionUnion,
    intersect_all,
    union_all,
)
from .ring import Ring
from .segment import Segment

__all__ = [
    "AREA_EPSILON",
    "DEFAULT_RESOLUTION",
    "EPSILON",
    "Circle",
    "EmptyRegion",
    "ExtendedEllipse",
    "Mbr",
    "Point",
    "Polygon",
    "Region",
    "RegionDifference",
    "RegionIntersection",
    "RegionUnion",
    "Ring",
    "Segment",
    "floats_equal",
    "grid_points",
    "intersect_all",
    "intersection_fraction",
    "near_zero",
    "polygon_grid_points",
    "region_area",
    "union_all",
]
