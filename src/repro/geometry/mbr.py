"""Minimum bounding rectangles (MBRs).

MBRs are the lingua franca between the geometry engine and the R-tree based
indexes: every region exposes an MBR, R-tree entries store MBRs, and the
join-based query algorithms prune on MBR intersection before any exact
region computation happens (Section 4 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from .point import EPSILON, Point

__all__ = ["Mbr"]


@dataclass(frozen=True, slots=True)
class Mbr:
    """An immutable axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate MBR: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Mbr":
        """Smallest MBR containing all ``points`` (at least one required)."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("Mbr.from_points needs at least one point") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for point in iterator:
            min_x = min(min_x, point.x)
            max_x = max(max_x, point.x)
            min_y = min(min_y, point.y)
            max_y = max(max_y, point.y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def around(cls, center: Point, half_width: float, half_height: float | None = None) -> "Mbr":
        """MBR centred on ``center`` with the given half extents."""
        if half_height is None:
            half_height = half_width
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def area(self) -> float:
        return self.width * self.height

    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def corners(self) -> Iterator[Point]:
        yield Point(self.min_x, self.min_y)
        yield Point(self.max_x, self.min_y)
        yield Point(self.max_x, self.max_y)
        yield Point(self.min_x, self.max_y)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, point: Point, tolerance: float = EPSILON) -> bool:
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def contains_mbr(self, other: "Mbr") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Mbr") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def union(self, other: "Mbr") -> "Mbr":
        return Mbr(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Mbr") -> "Mbr | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Mbr(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Mbr":
        """This MBR grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Mbr(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def enlargement(self, other: "Mbr") -> float:
        """Area growth needed for this MBR to also cover ``other``.

        This is the classic Guttman insertion heuristic used by the R-tree.
        """
        return self.union(other).area() - self.area()

    def min_distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the rectangle (0 if inside)."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    @staticmethod
    def union_all(mbrs: Iterable["Mbr"]) -> "Mbr":
        """Union of a non-empty iterable of MBRs."""
        iterator = iter(mbrs)
        try:
            result = next(iterator)
        except StopIteration:
            raise ValueError("union_all needs at least one MBR") from None
        for mbr in iterator:
            result = result.union(mbr)
        return result
