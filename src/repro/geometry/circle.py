"""Circles — the detection ranges of proximity detection devices.

A symbolic positioning device (RFID reader, Bluetooth radio) detects an
object exactly when the object is within a circular *detection range*
(paper, Section 1).  Circles therefore appear both as tracking primitives
and as building blocks of uncertainty regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .mbr import Mbr
from .point import EPSILON, Point
from .region import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = ["Circle"]


@dataclass(frozen=True)
class Circle(Region):
    """A closed disk with the given ``center`` and ``radius``."""

    center: Point
    radius: float
    _mbr: Mbr = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative radius: {self.radius}")
        object.__setattr__(
            self, "_mbr", Mbr.around(self.center, self.radius, self.radius)
        )

    @property
    def mbr(self) -> Mbr:
        return self._mbr

    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def contains(self, point: Point) -> bool:
        return self.center.distance_to(point) <= self.radius + EPSILON

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        dx = xs - self.center.x
        dy = ys - self.center.y
        limit = self.radius + EPSILON
        return dx * dx + dy * dy <= limit * limit

    def distance_to_point(self, point: Point) -> float:
        """Distance from ``point`` to the disk (0 when inside).

        This is the ``dist(p, C) = max(0, |p - c| - r)`` term used by the
        extended-ellipse membership predicate.
        """
        return max(0.0, self.center.distance_to(point) - self.radius)

    def expanded(self, margin: float) -> "Circle":
        """A concentric circle with radius grown by ``margin``."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Circle(self.center, self.radius + margin)

    def intersects_circle(self, other: "Circle") -> bool:
        """Whether the two closed disks share at least one point."""
        gap = self.center.distance_to(other.center) - self.radius - other.radius
        return gap <= EPSILON

    def boundary_point_towards(self, target: Point) -> Point:
        """The boundary point in the direction of ``target``.

        Falls back to the rightmost boundary point when ``target`` coincides
        with the center.  Used when picking the foci of an extended ellipse.
        """
        delta = target - self.center
        length = delta.norm()
        if length <= EPSILON:
            return Point(self.center.x + self.radius, self.center.y)
        scale = self.radius / length
        return self.center + delta * scale

    def sample_boundary(self, count: int) -> list[Point]:
        """``count`` evenly spaced boundary points (counter-clockwise)."""
        if count < 1:
            raise ValueError("count must be positive")
        step = 2.0 * math.pi / count
        return [
            Point(
                self.center.x + self.radius * math.cos(i * step),
                self.center.y + self.radius * math.sin(i * step),
            )
            for i in range(count)
        ]
