"""Rings (annuli) around detection ranges.

``Ring(dev, rho)`` in the paper denotes the ring whose inner circle is the
device's detection circle and whose outer circle extends the inner radius by
``rho`` (Section 3.1.2, footnote 1).  A ring captures where an object can be
after leaving — or before entering — a detection range, given the maximum
speed ``V_max``: outside the range, but within ``rho`` of its boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .circle import Circle
from .mbr import Mbr
from .point import EPSILON, Point
from .region import Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = ["Ring"]


@dataclass(frozen=True)
class Ring(Region):
    """The closed annulus between ``inner`` and ``inner`` grown by ``width``.

    Both boundary circles are included; a zero ``width`` degenerates to the
    inner circle's boundary (zero area but still a sound over-approximation
    of "the object is exactly on the range boundary").
    """

    inner: Circle
    width: float
    _mbr: Mbr = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError(f"negative ring width: {self.width}")
        outer_radius = self.inner.radius + self.width
        object.__setattr__(
            self, "_mbr", Mbr.around(self.inner.center, outer_radius, outer_radius)
        )

    @property
    def center(self) -> Point:
        return self.inner.center

    @property
    def inner_radius(self) -> float:
        return self.inner.radius

    @property
    def outer_radius(self) -> float:
        return self.inner.radius + self.width

    @property
    def mbr(self) -> Mbr:
        return self._mbr

    def area(self) -> float:
        return math.pi * (self.outer_radius**2 - self.inner_radius**2)

    def contains(self, point: Point) -> bool:
        distance = self.center.distance_to(point)
        return (
            self.inner_radius - EPSILON
            <= distance
            <= self.outer_radius + EPSILON
        )

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        dx = xs - self.center.x
        dy = ys - self.center.y
        squared = dx * dx + dy * dy
        low = max(self.inner_radius - EPSILON, 0.0)
        high = self.outer_radius + EPSILON
        return (squared >= low * low) & (squared <= high * high)

    def outer_circle(self) -> Circle:
        """The disk bounded by the ring's outer boundary."""
        return Circle(self.center, self.outer_radius)
