"""``python -m repro.tools`` — the command-line front end.

Three subcommands cover the bring-your-own-data workflow end to end:

``generate``
    Produce a synthetic or simulated-CPH data set and write it to a
    directory as portable files: ``model.json`` (floor plan + devices +
    POIs) and ``ott.csv`` (tracking records).

``query``
    Run a snapshot or interval top-k query against such a directory and
    print the ranked POIs.

``info``
    Summarise a data set directory (records, objects, span, devices).

Examples::

    python -m repro.tools generate --kind synthetic --objects 100 --out data/
    python -m repro.tools info data/
    python -m repro.tools query data/ --snapshot 1800 --k 5
    python -m repro.tools query data/ --interval 1200 1800 --k 10 --method iterative
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.engine import FlowEngine
from .datagen import (
    CphConfig,
    SyntheticConfig,
    build_cph_dataset,
    build_synthetic_dataset,
)
from .indoor.io import load_indoor_model, save_indoor_model
from .tracking.io import load_ott_csv, save_ott_csv

__all__ = ["main", "build_parser"]

MODEL_FILE = "model.json"
OTT_FILE = "ott.csv"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="Generate, inspect and query indoor tracking data sets.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a data set directory"
    )
    generate.add_argument(
        "--kind", choices=("synthetic", "cph"), default="synthetic"
    )
    generate.add_argument("--objects", type=int, default=100)
    generate.add_argument(
        "--minutes", type=float, default=30.0, help="simulated duration"
    )
    generate.add_argument("--detection-range", type=float, default=None)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", required=True, help="output directory")

    info = commands.add_parser("info", help="summarise a data set directory")
    info.add_argument("directory")

    query = commands.add_parser("query", help="run a top-k query")
    query.add_argument("directory")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--snapshot", type=float, metavar="T", help="snapshot query at time T"
    )
    group.add_argument(
        "--interval",
        type=float,
        nargs=2,
        metavar=("T_START", "T_END"),
        help="interval query over [T_START, T_END]",
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--method", choices=("join", "iterative"), default="join")
    query.add_argument(
        "--v-max", type=float, default=1.1, help="maximum speed (m/s)"
    )
    query.add_argument(
        "--no-topology-check",
        action="store_true",
        help="skip the indoor topology check",
    )
    return parser


def _cmd_generate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.kind == "synthetic":
        config = SyntheticConfig(
            num_objects=args.objects,
            duration=args.minutes * 60.0,
            seed=args.seed,
            **(
                {"detection_range": args.detection_range}
                if args.detection_range is not None
                else {}
            ),
        )
        dataset = build_synthetic_dataset(config)
    else:
        config = CphConfig(
            num_passengers=args.objects,
            horizon=args.minutes * 60.0,
            seed=args.seed,
            **(
                {"detection_range": args.detection_range}
                if args.detection_range is not None
                else {}
            ),
        )
        dataset = build_cph_dataset(config)
    save_indoor_model(
        out / MODEL_FILE, dataset.floorplan, dataset.deployment, dataset.pois
    )
    rows = save_ott_csv(dataset.ott, out / OTT_FILE)
    start, end = dataset.time_span()
    print(
        f"wrote {out / MODEL_FILE} and {out / OTT_FILE}: "
        f"{rows} records, {dataset.ott.object_count} objects, "
        f"span [{start:.0f}, {end:.0f}] s"
    )
    return 0


def _load_directory(directory: str):
    base = Path(directory)
    model_path = base / MODEL_FILE
    ott_path = base / OTT_FILE
    if not model_path.exists() or not ott_path.exists():
        raise FileNotFoundError(
            f"{base} must contain {MODEL_FILE} and {OTT_FILE} "
            "(see `python -m repro.tools generate`)"
        )
    floorplan, deployment, pois = load_indoor_model(model_path)
    if floorplan is None or deployment is None or not pois:
        raise ValueError(f"{model_path} must contain rooms, devices and POIs")
    return floorplan, deployment, pois, load_ott_csv(ott_path)


def _cmd_info(args) -> int:
    floorplan, deployment, pois, ott = _load_directory(args.directory)
    start, end = ott.time_span()
    print(f"rooms:       {len(floorplan.rooms)}")
    print(f"doors:       {len(floorplan.doors)}")
    print(f"devices:     {len(deployment)}")
    print(f"POIs:        {len(pois)}")
    print(f"records:     {len(ott)}")
    print(f"objects:     {ott.object_count}")
    print(f"time span:   [{start:.1f}, {end:.1f}] s ({(end - start) / 60:.1f} min)")
    return 0


def _cmd_query(args) -> int:
    floorplan, deployment, pois, ott = _load_directory(args.directory)
    engine = FlowEngine(
        floorplan,
        deployment,
        ott,
        pois,
        v_max=args.v_max,
        topology_check=not args.no_topology_check,
    )
    if args.snapshot is not None:
        result = engine.snapshot_topk(args.snapshot, args.k, method=args.method)
        print(f"top-{args.k} POIs at t={args.snapshot:g} ({args.method}):")
    else:
        t_start, t_end = args.interval
        result = engine.interval_topk(t_start, t_end, args.k, method=args.method)
        print(
            f"top-{args.k} POIs during [{t_start:g}, {t_end:g}] ({args.method}):"
        )
    for rank, entry in enumerate(result, start=1):
        name = entry.poi.name or entry.poi.poi_id
        print(f"  {rank:>2}. {name:32s} flow={entry.flow:9.3f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "query":
            return _cmd_query(args)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
