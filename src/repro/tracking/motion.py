"""Motion programs: how simulated objects move through the floor plan.

The paper generates object movements with the *random waypoint model*
(Section 5.1): each object repeatedly picks a random destination, walks
there at fixed speed, optionally pauses, and repeats.  Indoors the walk
must honour the topology — objects move along shortest door paths, which
is what :class:`repro.indoor.topology.DoorGraph` provides.

:func:`itinerary_trajectory` builds purpose-driven movement instead (used
by the airport data generator: check-in → security → shops → gate).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..geometry import Point
from ..indoor.floorplan import FloorPlan, Room
from ..indoor.topology import DoorGraph
from .records import ObjectId
from .trajectory import Leg, Trajectory

__all__ = [
    "random_point_in_room",
    "random_waypoint_trajectory",
    "itinerary_trajectory",
    "zipf_room_weights",
]

#: Inset from room walls when sampling random positions, so objects never
#: stand exactly on a boundary (meters).
_WALL_INSET = 0.4


def random_point_in_room(room: Room, rng: random.Random) -> Point:
    """A uniform random point inside ``room``, inset from the walls."""
    box = room.polygon.mbr
    min_x = box.min_x + _WALL_INSET
    max_x = box.max_x - _WALL_INSET
    min_y = box.min_y + _WALL_INSET
    max_y = box.max_y - _WALL_INSET
    if min_x >= max_x or min_y >= max_y:
        return box.center
    # Rooms are convex; rejection-sample against the polygon for the
    # general case (a rectangle accepts on the first draw).
    for _ in range(64):
        candidate = Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
        if room.polygon.contains(candidate):
            return candidate
    return room.polygon.centroid()


def _walk_legs(
    waypoints: Sequence[Point], speed: float, t_start: float
) -> tuple[list[Leg], float]:
    """Constant-speed legs through ``waypoints``; returns (legs, end time)."""
    legs: list[Leg] = []
    t = t_start
    for a, b in zip(waypoints, waypoints[1:]):
        distance = a.distance_to(b)
        if distance <= 0.0:
            continue
        duration = distance / speed
        legs.append(Leg(start=a, end=b, t_start=t, t_end=t + duration))
        t += duration
    return legs, t


def zipf_room_weights(room_count: int, exponent: float = 1.0) -> list[float]:
    """Zipf-like popularity weights for destination choice.

    Real indoor spaces have popular and unpopular parts (the paper's whole
    premise — some shops are visited far more than others); a Zipf profile
    over rooms reproduces that skew.  ``exponent=0`` degenerates to the
    uniform choice of the textbook random waypoint model.
    """
    if room_count < 1:
        raise ValueError("room_count must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return [1.0 / (rank + 1) ** exponent for rank in range(room_count)]


def random_waypoint_trajectory(
    object_id: ObjectId,
    plan: FloorPlan,
    graph: DoorGraph,
    rng: random.Random,
    speed: float = 1.1,
    t_start: float = 0.0,
    duration: float = 3600.0,
    pause_max: float = 60.0,
    room_weights: Sequence[float] | None = None,
) -> Trajectory:
    """Random waypoint movement for ``duration`` seconds.

    The object starts at a random point, then repeatedly: picks a random
    room and a random point in it, walks the shortest indoor route there at
    ``speed`` (the paper uses a fixed speed equal to ``V_max``), and pauses
    for a uniform random time up to ``pause_max``.  The final leg is
    truncated at the horizon so all trajectories span exactly
    ``[t_start, t_start + duration]``.

    ``room_weights`` biases destination choice (e.g.
    :func:`zipf_room_weights`); ``None`` picks rooms uniformly.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    rooms = plan.rooms
    if room_weights is not None and len(room_weights) != len(rooms):
        raise ValueError("room_weights must have one weight per room")
    t_end_target = t_start + duration

    def pick_room() -> Room:
        if room_weights is None:
            return rng.choice(rooms)
        return rng.choices(rooms, weights=room_weights, k=1)[0]

    position = random_point_in_room(pick_room(), rng)
    legs: list[Leg] = []
    t = t_start
    while t < t_end_target:
        destination_room = pick_room()
        destination = random_point_in_room(destination_room, rng)
        waypoints = graph.route(position, destination)
        if waypoints is None or len(waypoints) < 2:
            # Unreachable destination (disconnected plan): dwell instead.
            waypoints = [position]
        walk_legs, t_after = _walk_legs(waypoints, speed, t)
        legs.extend(walk_legs)
        t = t_after
        position = waypoints[-1]
        if t >= t_end_target:
            break
        pause = rng.uniform(0.0, pause_max)
        if pause > 0.0:
            pause_end = min(t + pause, t_end_target)
            legs.append(Leg(start=position, end=position, t_start=t, t_end=pause_end))
            t = pause_end
    return Trajectory(object_id, _truncate(legs, t_start, t_end_target, position))


def itinerary_trajectory(
    object_id: ObjectId,
    graph: DoorGraph,
    stops: Sequence[tuple[Point, float]],
    speed: float = 1.1,
    t_start: float = 0.0,
) -> Trajectory:
    """Movement visiting ``stops`` in order, dwelling at each.

    ``stops`` is a sequence of ``(position, dwell_seconds)``; the object
    walks shortest indoor routes between consecutive stops.
    """
    if not stops:
        raise ValueError("itinerary needs at least one stop")
    legs: list[Leg] = []
    t = t_start
    position, first_dwell = stops[0]
    if first_dwell > 0:
        legs.append(Leg(position, position, t, t + first_dwell))
        t += first_dwell
    for destination, dwell in stops[1:]:
        waypoints = graph.route(position, destination)
        if waypoints is None:
            raise ValueError(
                f"object {object_id!r}: no indoor route to {destination}"
            )
        walk_legs, t = _walk_legs(waypoints, speed, t)
        legs.extend(walk_legs)
        position = destination
        if dwell > 0:
            legs.append(Leg(position, position, t, t + dwell))
            t += dwell
    if not legs:
        legs.append(Leg(position, position, t_start, t_start))
    return Trajectory(object_id, legs)


def _truncate(
    legs: list[Leg], t_start: float, t_end: float, position: Point
) -> list[Leg]:
    """Clip legs at the horizon; pad with a dwell when movement ended early."""
    result: list[Leg] = []
    for leg in legs:
        if leg.t_start >= t_end:
            break
        if leg.t_end <= t_end:
            result.append(leg)
            continue
        cut_point = leg.position_at(t_end)
        result.append(Leg(leg.start, cut_point, leg.t_start, t_end))
        break
    if not result:
        result.append(Leg(position, position, t_start, t_end))
    elif result[-1].t_end < t_end:
        tail = result[-1]
        result.append(Leg(tail.end, tail.end, tail.t_end, t_end))
    return result
