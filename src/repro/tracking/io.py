"""Reading and writing tracking data.

Real deployments deliver raw readings or pre-merged tracking records as
flat files; these helpers load them into the library's types and write
them back out.  CSV is the interchange format: one row per reading or
record, with a header.

Schemas::

    readings:  object_id,device_id,t
    records:   record_id,object_id,device_id,t_s,t_e
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from .records import RawReading, TrackingRecord
from .table import ObjectTrackingTable

__all__ = [
    "save_readings_csv",
    "load_readings_csv",
    "save_ott_csv",
    "load_ott_csv",
]

_READING_FIELDS = ("object_id", "device_id", "t")
_RECORD_FIELDS = ("record_id", "object_id", "device_id", "t_s", "t_e")


def save_readings_csv(readings: Iterable[RawReading], path: str | Path) -> int:
    """Write raw readings; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_READING_FIELDS)
        for reading in readings:
            writer.writerow(
                (str(reading.object_id), str(reading.device_id), repr(reading.t))
            )
            count += 1
    return count


def load_readings_csv(path: str | Path) -> list[RawReading]:
    """Load raw readings written by :func:`save_readings_csv`."""
    readings = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require_fields(reader.fieldnames, _READING_FIELDS, path)
        for line_number, row in enumerate(reader, start=2):
            try:
                readings.append(
                    RawReading(
                        object_id=row["object_id"],
                        device_id=row["device_id"],
                        t=float(row["t"]),
                    )
                )
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad reading row {row!r}"
                ) from error
    return readings


def save_ott_csv(ott: ObjectTrackingTable, path: str | Path) -> int:
    """Write an OTT; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RECORD_FIELDS)
        for record in ott:
            writer.writerow(
                (
                    record.record_id,
                    str(record.object_id),
                    str(record.device_id),
                    repr(record.t_s),
                    repr(record.t_e),
                )
            )
            count += 1
    return count


def load_ott_csv(path: str | Path) -> ObjectTrackingTable:
    """Load (and freeze) an OTT written by :func:`save_ott_csv`.

    Raises ``ValueError`` on malformed rows and on temporally inconsistent
    data (overlapping records of one object), so bad files fail loudly at
    load time rather than corrupting query results.
    """
    table = ObjectTrackingTable()
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require_fields(reader.fieldnames, _RECORD_FIELDS, path)
        for line_number, row in enumerate(reader, start=2):
            try:
                table.append(
                    TrackingRecord(
                        record_id=int(row["record_id"]),
                        object_id=row["object_id"],
                        device_id=row["device_id"],
                        t_s=float(row["t_s"]),
                        t_e=float(row["t_e"]),
                    )
                )
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad record row {row!r}"
                ) from error
    return table.freeze()


def _require_fields(fieldnames, expected, path) -> None:
    if fieldnames is None or tuple(fieldnames) != tuple(expected):
        raise ValueError(
            f"{path}: expected header {','.join(expected)}, "
            f"got {fieldnames!r}"
        )
