"""Reading and writing tracking data.

Real deployments deliver raw readings or pre-merged tracking records as
flat files; these helpers load them into the library's types and write
them back out.  CSV is the interchange format: one row per reading or
record, with a header.

Schemas::

    readings:  object_id,device_id,t
    records:   record_id,object_id,device_id,t_s,t_e

Record import runs through the storage seam: every parsed row is
appended to a :class:`~repro.storage.base.StorageBackend` (idempotently —
re-importing a file a crashed import half-finished just skips the stored
prefix), and a frozen table is a :meth:`ObjectTrackingTable.from_backend
<repro.tracking.table.ObjectTrackingTable.from_backend>` snapshot of the
store.  :func:`load_ott_csv` is the one-call composition of the two over
a throwaway in-memory store; pass a :class:`~repro.storage.sqlite.SQLiteBackend`
to :func:`import_records_csv` instead to make the file durable.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..storage.base import StorageBackend
from ..storage.memory import MemoryBackend
from .records import RawReading, TrackingRecord
from .table import ObjectTrackingTable

__all__ = [
    "save_readings_csv",
    "load_readings_csv",
    "save_ott_csv",
    "load_ott_csv",
    "import_records_csv",
    "export_records_csv",
]

_READING_FIELDS = ("object_id", "device_id", "t")
_RECORD_FIELDS = ("record_id", "object_id", "device_id", "t_s", "t_e")


def save_readings_csv(readings: Iterable[RawReading], path: str | Path) -> int:
    """Write raw readings; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_READING_FIELDS)
        for reading in readings:
            writer.writerow(
                (str(reading.object_id), str(reading.device_id), repr(reading.t))
            )
            count += 1
    return count


def load_readings_csv(path: str | Path) -> list[RawReading]:
    """Load raw readings written by :func:`save_readings_csv`."""
    readings = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require_fields(reader.fieldnames, _READING_FIELDS, path)
        for line_number, row in enumerate(reader, start=2):
            try:
                readings.append(
                    RawReading(
                        object_id=row["object_id"],
                        device_id=row["device_id"],
                        t=float(row["t"]),
                    )
                )
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: bad reading row {row!r}"
                ) from error
    return readings


def save_ott_csv(ott: Iterable[TrackingRecord], path: str | Path) -> int:
    """Write tracking records (a table or any iterable); returns the count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RECORD_FIELDS)
        for record in ott:
            writer.writerow(
                (
                    record.record_id,
                    str(record.object_id),
                    str(record.device_id),
                    repr(record.t_s),
                    repr(record.t_e),
                )
            )
            count += 1
    return count


def _record_from_row(
    row: Mapping[str, str], path: str | Path, line_number: int
) -> TrackingRecord:
    """The one place a record row is parsed (shared by every import path)."""
    try:
        return TrackingRecord(
            record_id=int(row["record_id"]),
            object_id=row["object_id"],
            device_id=row["device_id"],
            t_s=float(row["t_s"]),
            t_e=float(row["t_e"]),
        )
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"{path}:{line_number}: bad record row {row!r}"
        ) from error


def import_records_csv(path: str | Path, backend: StorageBackend) -> int:
    """Append a record CSV's rows to a storage backend, idempotently.

    Rows whose ``record_id`` the store already holds are skipped (their
    identity is still checked), so re-running an interrupted import picks
    up where it stopped instead of failing or duplicating.

    Args:
        path: A CSV written by :func:`save_ott_csv`.
        backend: The store to append into.

    Returns:
        The number of rows actually appended (redeliveries excluded).

    Raises:
        ValueError: On a malformed header/row, or if a stored ``record_id``
            reappears with a different identity.
    """
    count = 0
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        _require_fields(reader.fieldnames, _RECORD_FIELDS, path)
        for line_number, row in enumerate(reader, start=2):
            record = _record_from_row(row, path, line_number)
            # Rows land in the store first; tables are built from it
            # afterwards, so there is no table to go through yet.
            # repro: allow(context-bypass): the import seam is the writer
            if backend.append_row(record):
                count += 1
    return count


def export_records_csv(backend: StorageBackend, path: str | Path) -> int:
    """Write a store's current rows (snapshot ⊕ tail) as a record CSV.

    The inverse of :func:`import_records_csv`; open episodes are written
    at their current extent.  Returns the number of rows written.
    """
    return save_ott_csv(
        (row.record for row in backend.iter_rows()), path
    )


def load_ott_csv(path: str | Path) -> ObjectTrackingTable:
    """Load (and freeze) an OTT written by :func:`save_ott_csv`.

    The file → backend → ``freeze()`` round trip over a throwaway
    in-memory store.  Raises ``ValueError`` on malformed rows and on
    temporally inconsistent data (overlapping records of one object), so
    bad files fail loudly at load time rather than corrupting query
    results.
    """
    backend = MemoryBackend()
    import_records_csv(path, backend)
    return ObjectTrackingTable.from_backend(backend)


def _require_fields(
    fieldnames: Sequence[str] | None,
    expected: Sequence[str],
    path: str | Path,
) -> None:
    if fieldnames is None or tuple(fieldnames) != tuple(expected):
        raise ValueError(
            f"{path}: expected header {','.join(expected)}, "
            f"got {fieldnames!r}"
        )
