"""Symbolic indoor tracking data types.

Raw position readings are reported as ``(objectID, deviceID, t)`` — object
``objectID`` was seen by proximity detection device ``deviceID`` at time
``t``.  Consecutive raw readings by the same device are merged into
*tracking records* ``(ID, objectID, deviceID, t_s, t_e)`` meaning the
object was continuously seen from ``t_s`` to ``t_e`` (paper, Section 2.1).

Times are floats in seconds on an arbitrary epoch; identifiers are opaque
strings or ints as the application prefers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = ["ObjectId", "DeviceId", "RawReading", "TrackingRecord"]

ObjectId = Hashable
DeviceId = Hashable


@dataclass(frozen=True, slots=True)
class RawReading:
    """A raw proximity detection: ``deviceID`` saw ``objectID`` at ``t``."""

    object_id: ObjectId
    device_id: DeviceId
    t: float


@dataclass(frozen=True, slots=True)
class TrackingRecord:
    """A merged detection episode: continuous sighting from ``t_s`` to ``t_e``.

    This is one row of the Object Tracking Table (OTT, paper Table 2).
    ``record_id`` is a table-unique identifier.
    """

    record_id: int
    object_id: ObjectId
    device_id: DeviceId
    t_s: float
    t_e: float

    def __post_init__(self) -> None:
        if self.t_e < self.t_s:
            raise ValueError(
                f"record {self.record_id}: t_e ({self.t_e}) precedes t_s ({self.t_s})"
            )

    @property
    def duration(self) -> float:
        """The episode's length in seconds (``t_e - t_s``)."""
        return self.t_e - self.t_s

    def covers(self, t: float) -> bool:
        """Whether the detection episode covers time ``t`` (closed interval)."""
        return self.t_s <= t <= self.t_e

    def overlaps(self, t_start: float, t_end: float) -> bool:
        """Whether the episode intersects the closed interval [t_start, t_end]."""
        return self.t_s <= t_end and t_start <= self.t_e
