"""The proximity detection model: trajectories -> raw readings.

The positioning substrate works exactly as the paper assumes: a device
detects an object whenever the object is inside the device's circular
detection range, sampled at a configured frequency (Section 2.1).  Rather
than stepping the simulation clock, detection episodes are computed
*analytically* per trajectory leg — a constant-speed straight leg is inside
a circle for a closed parameter interval obtained from one quadratic
equation — and raw readings are then emitted only at the sampling ticks
inside those episodes.  This is orders of magnitude faster than stepping
and bit-exact with it (the test suite compares both).

All objects share one global tick grid (multiples of the sampling interval)
so that merged records line up across devices.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..indoor.devices import Deployment, Device
from .records import RawReading
from .trajectory import Leg, Trajectory

__all__ = ["detect_trajectory", "detect_all", "detection_episodes"]


def detection_episodes(
    trajectory: Trajectory, device: Device
) -> list[tuple[float, float]]:
    """Maximal time intervals during which the object is in the device range.

    Intervals are closed, non-overlapping and sorted; touching intervals
    from consecutive legs are coalesced.
    """
    episodes: list[tuple[float, float]] = []
    for leg in trajectory.legs:
        window = _leg_episode(leg, device)
        if window is None:
            continue
        if episodes and window[0] <= episodes[-1][1] + 1e-9:
            episodes[-1] = (episodes[-1][0], max(episodes[-1][1], window[1]))
        else:
            episodes.append(window)
    return episodes


def _leg_episode(leg: Leg, device: Device) -> tuple[float, float] | None:
    if leg.is_dwell:
        if device.range.contains(leg.start):
            return (leg.t_start, leg.t_end)
        return None
    fractions = leg.segment().circle_intersection_fractions(
        device.center, device.radius
    )
    if fractions is None:
        return None
    f_in, f_out = fractions
    return (
        leg.t_start + f_in * leg.duration,
        leg.t_start + f_out * leg.duration,
    )


def _ticks_in(t_from: float, t_to: float, interval: float) -> Iterable[float]:
    """Global-grid sampling ticks inside the closed window."""
    first = math.ceil((t_from - 1e-9) / interval)
    last = math.floor((t_to + 1e-9) / interval)
    for k in range(first, last + 1):
        yield k * interval


def detect_trajectory(
    trajectory: Trajectory,
    deployment: Deployment,
    sampling_interval: float = 1.0,
    exclusive: bool = False,
) -> list[RawReading]:
    """Raw readings a deployment produces for one trajectory.

    Readings are sorted by time.  Only devices whose range bounding box
    comes near a leg are examined, via the deployment's spatial index.

    ``exclusive=True`` supports deployments with *overlapping* detection
    ranges (the paper's Section 3.4 Remark): when several devices see the
    object at the same tick, only the nearest one reports it — the way
    real systems resolve simultaneous sightings by signal strength.  The
    resulting readings merge into a temporally consistent OTT, and the
    uncertainty analysis stays sound (the object provably is inside the
    attributed device's range, and undetected gaps still imply being
    outside every range).
    """
    if sampling_interval <= 0:
        raise ValueError("sampling_interval must be positive")
    margin = deployment.max_radius
    readings: list[RawReading] = []
    by_tick: dict[float, tuple[float, RawReading]] = {}
    for leg in trajectory.legs:
        probe = leg.mbr().expanded(margin)
        for device in deployment.devices_near(probe):
            window = _leg_episode(leg, device)
            if window is None:
                continue
            for t in _ticks_in(window[0], window[1], sampling_interval):
                reading = RawReading(
                    object_id=trajectory.object_id,
                    device_id=device.device_id,
                    t=t,
                )
                if not exclusive:
                    readings.append(reading)
                    continue
                distance = trajectory.position_at(t).distance_to(device.center)
                best = by_tick.get(t)
                if best is None or distance < best[0]:
                    by_tick[t] = (distance, reading)
    if exclusive:
        readings = [reading for _, reading in by_tick.values()]
    # A tick on a leg boundary can be emitted by both adjacent legs;
    # de-duplicate while sorting.
    unique = {
        (reading.device_id, reading.t): reading for reading in readings
    }
    return sorted(unique.values(), key=lambda reading: (reading.t, str(reading.device_id)))


def detect_all(
    trajectories: Sequence[Trajectory],
    deployment: Deployment,
    sampling_interval: float = 1.0,
    exclusive: bool = False,
) -> list[RawReading]:
    """Raw readings for a population of trajectories (grouped per object)."""
    readings: list[RawReading] = []
    for trajectory in trajectories:
        readings.extend(
            detect_trajectory(
                trajectory, deployment, sampling_interval, exclusive=exclusive
            )
        )
    return readings
