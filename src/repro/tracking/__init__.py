"""Tracking substrate: records, OTT, detection, motion and simulation."""

from .detection import detect_all, detect_trajectory, detection_episodes
from .io import (
    export_records_csv,
    import_records_csv,
    load_ott_csv,
    load_readings_csv,
    save_ott_csv,
    save_readings_csv,
)
from .merger import merge_readings
from .motion import (
    itinerary_trajectory,
    random_point_in_room,
    random_waypoint_trajectory,
    zipf_room_weights,
)
from .records import DeviceId, ObjectId, RawReading, TrackingRecord
from .simulator import (
    SimulationResult,
    simulate_random_waypoint,
    simulate_trajectories,
)
from .table import LiveTrackingTable, ObjectTrackingTable
from .trajectory import Leg, Trajectory

__all__ = [
    "DeviceId",
    "Leg",
    "LiveTrackingTable",
    "ObjectId",
    "ObjectTrackingTable",
    "RawReading",
    "SimulationResult",
    "TrackingRecord",
    "Trajectory",
    "detect_all",
    "detect_trajectory",
    "detection_episodes",
    "export_records_csv",
    "import_records_csv",
    "itinerary_trajectory",
    "load_ott_csv",
    "load_readings_csv",
    "merge_readings",
    "random_point_in_room",
    "random_waypoint_trajectory",
    "simulate_random_waypoint",
    "save_ott_csv",
    "save_readings_csv",
    "simulate_trajectories",
    "zipf_room_weights",
]
