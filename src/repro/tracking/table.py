"""The Object Tracking Table (OTT).

The OTT stores the historical tracking records of all objects (paper,
Table 2).  Besides plain storage it offers the per-object temporal lookups
the uncertainty analysis needs — the record covering a time point, and the
predecessor/successor records around an undetected gap — which double as
the brute-force reference implementation the AR-tree is tested against.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .records import DeviceId, ObjectId, TrackingRecord

__all__ = ["ObjectTrackingTable"]


class ObjectTrackingTable:
    """An append-only table of tracking records with per-object ordering.

    Records of the same object must be temporally consistent: sorted by
    ``t_s`` and non-overlapping (an object is seen by one device at a time;
    the paper assumes non-overlapping detection ranges, Section 3.4 Remark).
    Consistency is validated on :meth:`freeze`.
    """

    def __init__(self, records: Iterable[TrackingRecord] = ()):  # noqa: D107
        self._records: list[TrackingRecord] = []
        self._by_object: dict[ObjectId, list[TrackingRecord]] = {}
        self._start_times: dict[ObjectId, list[float]] = {}
        self._frozen = False
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, record: TrackingRecord) -> None:
        """Add a record (records may arrive in any global order)."""
        if self._frozen:
            raise RuntimeError("cannot append to a frozen OTT")
        self._records.append(record)
        self._by_object.setdefault(record.object_id, []).append(record)

    def freeze(self) -> "ObjectTrackingTable":
        """Sort per-object sequences, validate them and lock the table."""
        if self._frozen:
            return self
        for object_id, sequence in self._by_object.items():
            sequence.sort(key=lambda record: (record.t_s, record.t_e))
            self._validate_sequence(object_id, sequence)
            self._start_times[object_id] = [record.t_s for record in sequence]
        self._frozen = True
        return self

    @staticmethod
    def _validate_sequence(
        object_id: ObjectId, sequence: Sequence[TrackingRecord]
    ) -> None:
        for previous, current in zip(sequence, sequence[1:]):
            if current.t_s < previous.t_e:
                raise ValueError(
                    f"object {object_id!r}: record {current.record_id} "
                    f"(t_s={current.t_s}) overlaps record "
                    f"{previous.record_id} (t_e={previous.t_e})"
                )

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("freeze() the OTT before querying it")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrackingRecord]:
        return iter(self._records)

    @property
    def object_ids(self) -> list[ObjectId]:
        return list(self._by_object.keys())

    @property
    def object_count(self) -> int:
        return len(self._by_object)

    def time_span(self) -> tuple[float, float]:
        """The (min t_s, max t_e) over all records."""
        self._require_frozen()
        if not self._records:
            raise ValueError("empty OTT has no time span")
        return (
            min(record.t_s for record in self._records),
            max(record.t_e for record in self._records),
        )

    def records_for(self, object_id: ObjectId) -> list[TrackingRecord]:
        """The object's records sorted by start time (copy)."""
        self._require_frozen()
        return list(self._by_object.get(object_id, []))

    # ------------------------------------------------------------------
    # Temporal lookups (reference implementation for the AR-tree)
    # ------------------------------------------------------------------

    def record_covering(
        self, object_id: ObjectId, t: float
    ) -> TrackingRecord | None:
        """The record whose detection episode covers ``t``, if any."""
        self._require_frozen()
        sequence = self._by_object.get(object_id)
        if not sequence:
            return None
        index = bisect.bisect_right(self._start_times[object_id], t) - 1
        if index >= 0 and sequence[index].covers(t):
            return sequence[index]
        return None

    def predecessor(
        self, object_id: ObjectId, t: float
    ) -> TrackingRecord | None:
        """The last record with ``t_e < t`` — ``rd_pre`` for an inactive state.

        For an *active* state the paper's ``rd_pre`` is instead the
        predecessor of the covering record; use :meth:`previous_record`.
        """
        self._require_frozen()
        sequence = self._by_object.get(object_id)
        if not sequence:
            return None
        candidate = None
        for record in sequence:
            if record.t_e < t:
                candidate = record
            else:
                break
        return candidate

    def successor(self, object_id: ObjectId, t: float) -> TrackingRecord | None:
        """The first record with ``t_s > t`` — ``rd_suc`` for an inactive state."""
        self._require_frozen()
        sequence = self._by_object.get(object_id)
        if not sequence:
            return None
        index = bisect.bisect_right(self._start_times[object_id], t)
        if index < len(sequence):
            return sequence[index]
        return None

    def previous_record(
        self, object_id: ObjectId, record: TrackingRecord
    ) -> TrackingRecord | None:
        """The record immediately before ``record`` for the same object."""
        self._require_frozen()
        sequence = self._by_object.get(object_id, [])
        for previous, current in zip(sequence, sequence[1:]):
            if current.record_id == record.record_id:
                return previous
        return None

    def records_overlapping(
        self, object_id: ObjectId, t_start: float, t_end: float
    ) -> list[TrackingRecord]:
        """The object's records intersecting the closed window."""
        self._require_frozen()
        return [
            record
            for record in self._by_object.get(object_id, [])
            if record.overlaps(t_start, t_end)
        ]
