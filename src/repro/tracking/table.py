"""The Object Tracking Table (OTT), batch and live.

The OTT stores the historical tracking records of all objects (paper,
Table 2).  Two variants share one read-side core (:class:`_TrackingReads`):

* :class:`ObjectTrackingTable` — the batch table.  Records may arrive in
  any global order; per-object ordering and non-overlap are validated on
  :meth:`~ObjectTrackingTable.freeze`, after which the table is immutable
  and query-ready.
* :class:`LiveTrackingTable` — the streaming table.  Records must arrive
  in per-object time order and are validated *at append time*; the table
  is always query-ready, supports **open episodes** (a record whose
  ``t_e`` is still advancing as the object keeps being detected) and
  exposes a monotonically increasing :attr:`~LiveTrackingTable.generation`
  counter that downstream caches key their invalidation on.

Besides plain storage both offer the per-object temporal lookups the
uncertainty analysis needs — the record covering a time point, and the
predecessor/successor records around an undetected gap — which double as
the brute-force reference implementation the AR-tree is tested against.
"""

from __future__ import annotations

import bisect
from typing import AbstractSet, Iterable, Iterator, Sequence

from ..analysis.contracts import contracts_enabled, check_storage_generation
from ..storage.base import Mutation, StorageBackend, row_identity
from ..storage.env import default_live_backend
from .records import ObjectId, TrackingRecord

__all__ = ["ObjectTrackingTable", "LiveTrackingTable"]


def _validate_successor(
    object_id: ObjectId, previous: TrackingRecord, current: TrackingRecord
) -> None:
    """Per-object consistency: sorted by time and non-overlapping.

    An object is seen by one device at a time (the paper assumes
    non-overlapping detection ranges, Section 3.4 Remark), so a record may
    start no earlier than its predecessor ends.
    """
    if current.t_s < previous.t_e:
        raise ValueError(
            f"object {object_id!r}: record {current.record_id} "
            f"(t_s={current.t_s}) overlaps record "
            f"{previous.record_id} (t_e={previous.t_e})"
        )


class _TrackingReads:
    """The read side shared by the frozen and the live table.

    Subclasses maintain ``_records`` (global arrival order), ``_by_object``
    (per-object, time-sorted once queryable) and ``_start_times`` (the
    parallel ``t_s`` lists the bisect lookups run on), and gate queries
    through :meth:`_require_queryable`.
    """

    def __init__(self) -> None:
        self._records: list[TrackingRecord] = []
        self._by_object: dict[ObjectId, list[TrackingRecord]] = {}
        self._start_times: dict[ObjectId, list[float]] = {}

    def _require_queryable(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrackingRecord]:
        return iter(self._records)

    @property
    def object_ids(self) -> list[ObjectId]:
        """All object ids with at least one record (copy)."""
        return list(self._by_object.keys())

    @property
    def object_count(self) -> int:
        """How many distinct objects the table tracks."""
        return len(self._by_object)

    @property
    def open_object_ids(self) -> frozenset[ObjectId]:
        """Objects with an episode still advancing (always empty when frozen)."""
        return frozenset()

    def time_span(self) -> tuple[float, float]:
        """The (min t_s, max t_e) over all records."""
        self._require_queryable()
        if not self._records:
            raise ValueError("empty OTT has no time span")
        return (
            min(record.t_s for record in self._records),
            max(record.t_e for record in self._records),
        )

    def records_for(self, object_id: ObjectId) -> list[TrackingRecord]:
        """The object's records sorted by start time (copy)."""
        self._require_queryable()
        return list(self._by_object.get(object_id, []))

    # ------------------------------------------------------------------
    # Temporal lookups (reference implementation for the AR-tree)
    # ------------------------------------------------------------------

    def record_covering(
        self, object_id: ObjectId, t: float
    ) -> TrackingRecord | None:
        """The record whose detection episode covers ``t``, if any."""
        self._require_queryable()
        sequence = self._by_object.get(object_id)
        if not sequence:
            return None
        index = bisect.bisect_right(self._start_times[object_id], t) - 1
        if index >= 0 and sequence[index].covers(t):
            return sequence[index]
        return None

    def predecessor(
        self, object_id: ObjectId, t: float
    ) -> TrackingRecord | None:
        """The last record with ``t_e < t`` — ``rd_pre`` for an inactive state.

        For an *active* state the paper's ``rd_pre`` is instead the
        predecessor of the covering record; use :meth:`previous_record`.
        """
        self._require_queryable()
        sequence = self._by_object.get(object_id)
        if not sequence:
            return None
        candidate = None
        for record in sequence:
            if record.t_e < t:
                candidate = record
            else:
                break
        return candidate

    def successor(self, object_id: ObjectId, t: float) -> TrackingRecord | None:
        """The first record with ``t_s > t`` — ``rd_suc`` for an inactive state."""
        self._require_queryable()
        sequence = self._by_object.get(object_id)
        if not sequence:
            return None
        index = bisect.bisect_right(self._start_times[object_id], t)
        if index < len(sequence):
            return sequence[index]
        return None

    def previous_record(
        self, object_id: ObjectId, record: TrackingRecord
    ) -> TrackingRecord | None:
        """The record immediately before ``record`` for the same object."""
        self._require_queryable()
        sequence = self._by_object.get(object_id, [])
        for previous, current in zip(sequence, sequence[1:]):
            if current.record_id == record.record_id:
                return previous
        return None

    def records_overlapping(
        self, object_id: ObjectId, t_start: float, t_end: float
    ) -> list[TrackingRecord]:
        """The object's records intersecting the closed window."""
        self._require_queryable()
        return [
            record
            for record in self._by_object.get(object_id, [])
            if record.overlaps(t_start, t_end)
        ]


class ObjectTrackingTable(_TrackingReads):
    """An append-only table of tracking records with per-object ordering.

    Records of the same object must be temporally consistent: sorted by
    ``t_s`` and non-overlapping.  Consistency is validated on
    :meth:`freeze`, after which the table is immutable — this is the
    frozen core batch engines index and the substrate
    :class:`LiveTrackingTable` snapshots into.
    """

    def __init__(self, records: Iterable[TrackingRecord] = ()):  # noqa: D107
        super().__init__()
        self._frozen = False
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, record: TrackingRecord) -> None:
        """Add a record (records may arrive in any global order).

        Args:
            record: The closed tracking record to store.

        Raises:
            RuntimeError: If the table was already frozen.
        """
        if self._frozen:
            raise RuntimeError("cannot append to a frozen OTT")
        self._records.append(record)
        self._by_object.setdefault(record.object_id, []).append(record)

    @classmethod
    def from_backend(cls, backend: StorageBackend) -> "ObjectTrackingTable":
        """A frozen table over a storage backend's current rows.

        Open tail rows are included at their current extent — this is the
        batch snapshot of whatever the store holds right now, validated
        like any other frozen table.

        Args:
            backend: The store to read (snapshot ⊕ WAL tail).

        Returns:
            A new, already-frozen :class:`ObjectTrackingTable`.

        Raises:
            ValueError: If the stored rows are temporally inconsistent.
        """
        return cls(row.record for row in backend.iter_rows()).freeze()

    def freeze(self) -> "ObjectTrackingTable":
        """Sort per-object sequences, validate them and lock the table.

        Idempotent: freezing a frozen table is a no-op.

        Returns:
            ``self``, now immutable and query-ready.

        Raises:
            ValueError: If any object's records overlap in time.
        """
        if self._frozen:
            return self
        for object_id, sequence in self._by_object.items():
            sequence.sort(key=lambda record: (record.t_s, record.t_e))
            self._validate_sequence(object_id, sequence)
            self._start_times[object_id] = [record.t_s for record in sequence]
        self._frozen = True
        return self

    @staticmethod
    def _validate_sequence(
        object_id: ObjectId, sequence: Sequence[TrackingRecord]
    ) -> None:
        for previous, current in zip(sequence, sequence[1:]):
            _validate_successor(object_id, previous, current)

    def _require_queryable(self) -> None:
        if not self._frozen:
            raise RuntimeError("freeze() the OTT before querying it")

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def partition_view(
        self, object_ids: AbstractSet[ObjectId]
    ) -> "ObjectTrackingTable":
        """A frozen table holding only the given objects' records.

        The restriction of a consistent table is consistent, so the view
        is assembled directly from the parent's validated per-object
        sequences (sharing the record instances) without re-validating.

        Args:
            object_ids: The objects the view keeps (ids without records
                are simply absent from the view).

        Returns:
            A new, already-frozen :class:`ObjectTrackingTable`.

        Raises:
            RuntimeError: If this table was not frozen yet.
        """
        self._require_queryable()
        view = ObjectTrackingTable()
        view._records = [
            record for record in self._records if record.object_id in object_ids
        ]
        for object_id, sequence in self._by_object.items():
            if object_id in object_ids:
                view._by_object[object_id] = list(sequence)
                view._start_times[object_id] = list(self._start_times[object_id])
        view._frozen = True
        return view


class LiveTrackingTable(_TrackingReads):
    """An append-capable OTT validated at append time, for live ingestion.

    Unlike the batch table, records of one object must arrive in time
    order — each append is checked against the object's current tail
    record immediately, so an inconsistent stream fails at the offending
    record instead of at a much later ``freeze()``.  The table is always
    queryable; there is no frozen state.

    **Open episodes.**  A record appended with ``open=True`` models an
    object currently inside a device's range: its ``t_e`` is the latest
    observation so far and keeps advancing via :meth:`extend_episode`
    until :meth:`close_episode` fixes it.  At most one episode per object
    may be open, and it is always the object's last record.

    **Generation.**  Every mutation (append, extend, close) increments
    :attr:`generation`, a monotonic counter engines and caches use to
    detect that the table moved under them.

    **Storage.**  The table owns its in-memory read structures but not
    the data: every mutation is written through to a
    :class:`~repro.storage.base.StorageBackend` *before* the structures
    are updated, so the store never lags the table (kill the process
    between any two mutations and the store holds a consistent prefix).
    Without an explicit ``backend`` the environment-selected default is
    used — :class:`~repro.storage.memory.MemoryBackend` unless
    ``REPRO_STORAGE_BACKEND=sqlite``.  Constructing a table over an
    already-populated backend *recovers* it: the bulk snapshot is loaded
    directly and the WAL tail replayed, after which the table (and its
    :attr:`generation`) is exactly where the crashed writer left it.

    **Idempotency.**  Re-appending an already-stored ``record_id`` with
    the same identity is a no-op returning ``False`` (no generation
    bump), so a producer may simply re-send its whole stream after a
    crash; a *conflicting* redelivery raises.
    """

    def __init__(
        self,
        records: Iterable[TrackingRecord] = (),
        *,
        backend: StorageBackend | None = None,
    ):  # noqa: D107
        self._init_state(backend if backend is not None else default_live_backend())
        if self._backend.generation > 0:
            records = list(records)
            if records:
                raise ValueError(
                    "pass initial records or an already-populated backend, "
                    "not both"
                )
            self._fill_from_snapshot()
            for mutation in self._backend.replay_since(self._generation):
                self.replay_mutation(mutation)
            self._check_backend_sync()
        else:
            for record in records:
                self.append(record)

    def _init_state(self, backend: StorageBackend) -> None:
        _TrackingReads.__init__(self)
        self._generation = 0
        #: open episode per object: index of the record in ``_records``.
        self._open: dict[ObjectId, int] = {}
        #: every stored record by id (idempotent-redelivery detection).
        self._by_record_id: dict[int, TrackingRecord] = {}
        #: write-through off only while applying already-persisted state.
        self._persist = True
        self._backend = backend

    def _require_queryable(self) -> None:
        pass  # a live table is always consistent, hence always queryable

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    @property
    def backend(self) -> StorageBackend:
        """The storage backend every mutation is written through to."""
        return self._backend

    def checkpoint(self) -> int:
        """Fold the backend's WAL tail into its bulk snapshot.

        After a checkpoint, reopening the store bulk-loads everything and
        replays nothing.  Returns the number of mutations folded in.
        """
        return self._backend.compact()

    @classmethod
    def restore_snapshot(cls, backend: StorageBackend) -> "LiveTrackingTable":
        """A table over the persisted bulk snapshot only, tail unapplied.

        This is the engine-recovery seam: the returned table matches the
        state the AR-tree bulk-loads, and the caller then drives
        ``backend.replay_since(table.generation)`` through the ingest
        path (:meth:`replay_mutation` plus index/cache updates) so every
        layer advances in lockstep.  To recover a standalone table in one
        step, construct ``LiveTrackingTable(backend=backend)`` instead.

        Args:
            backend: The store to recover from.

        Returns:
            A table at ``backend.snapshot_generation``.
        """
        table = cls.__new__(cls)
        table._init_state(backend)
        table._fill_from_snapshot()
        return table

    def _fill_from_snapshot(self) -> None:
        """Bulk-load the backend's snapshot rows (no per-row persistence)."""
        for row in self._backend.snapshot_rows():
            record = row.record
            object_id = record.object_id
            if object_id in self._open:
                raise ValueError(
                    f"corrupt snapshot: object {object_id!r} has a row "
                    f"after its open tail row"
                )
            sequence = self._by_object.get(object_id)
            if sequence:
                _validate_successor(object_id, sequence[-1], record)
            self._records.append(record)
            self._by_object.setdefault(object_id, []).append(record)
            self._start_times.setdefault(object_id, []).append(record.t_s)
            self._by_record_id[record.record_id] = record
            if row.open:
                self._open[object_id] = len(self._records) - 1
        self._generation = self._backend.snapshot_generation

    def replay_mutation(self, mutation: Mutation) -> None:
        """Apply one already-persisted mutation without re-persisting it.

        Mutations must be replayed in generation order, immediately
        following this table's current generation.

        Args:
            mutation: The logged mutation (from ``backend.replay_since``).

        Raises:
            ValueError: If the mutation is out of order or fails the
                usual at-append validation.
        """
        if mutation.generation != self._generation + 1:
            raise ValueError(
                f"mutation {mutation.generation} replayed out of order "
                f"(table is at generation {self._generation})"
            )
        record = mutation.record
        self._persist = False
        try:
            if mutation.op == "append":
                self.append(record)
            elif mutation.op == "append_open":
                self.append(record, open=True)
            elif mutation.op == "extend":
                self.extend_episode(record.object_id, record.t_e)
            elif mutation.op == "close":
                self.close_episode(record.object_id, record.t_e)
            else:
                raise ValueError(f"unknown mutation op {mutation.op!r}")
        finally:
            self._persist = True

    def copy_into(self, backend: StorageBackend) -> "LiveTrackingTable":
        """Replay this table's whole stream into an empty backend.

        The attach path for pre-loaded data: the returned table owns
        ``backend`` (now holding every record, open episodes preserved)
        and continues from this table's state; ``self`` is left untouched
        on its own backend.

        Args:
            backend: The pristine store to populate.

        Returns:
            A new :class:`LiveTrackingTable` written through ``backend``.

        Raises:
            ValueError: If ``backend`` already holds data.
        """
        if backend.generation > 0:
            raise ValueError(
                "copy_into needs a pristine backend; construct "
                "LiveTrackingTable(backend=...) to recover a populated one"
            )
        open_indices = set(self._open.values())
        view = LiveTrackingTable(backend=backend)
        for index, record in enumerate(self._records):
            view.append(record, open=index in open_indices)
        return view

    def _check_backend_sync(self) -> None:
        if contracts_enabled():
            check_storage_generation(self._generation, self._backend.generation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonically increasing mutation counter (0 when pristine)."""
        return self._generation

    @property
    def open_object_ids(self) -> frozenset[ObjectId]:
        """Objects whose latest episode is still advancing."""
        return frozenset(self._open)

    def last_record(self, object_id: ObjectId) -> TrackingRecord | None:
        """The object's latest record (open or closed), if any."""
        sequence = self._by_object.get(object_id)
        return sequence[-1] if sequence else None

    def open_record(self, object_id: ObjectId) -> TrackingRecord | None:
        """The object's open episode at its current extent, if one is open."""
        index = self._open.get(object_id)
        return self._records[index] if index is not None else None

    # ------------------------------------------------------------------
    # Mutation (validated per call)
    # ------------------------------------------------------------------

    def append(self, record: TrackingRecord, *, open: bool = False) -> bool:
        """Append one record, validating order/non-overlap right now.

        ``open=True`` leaves the episode advancing (see the class
        docstring).  Appending to an object with an open episode is
        rejected — close it first, the stream is ambiguous otherwise.
        The record is persisted to the backend before the table's read
        structures are updated.

        Args:
            record: The record to append; its ``t_s`` must not precede
                the object's current tail ``t_e``.
            open: Keep the episode advancing (``t_e`` patchable).

        Returns:
            ``True`` if the record was appended, ``False`` for an
            idempotent redelivery of an already-stored ``record_id``
            (a no-op; the generation does not move).

        Raises:
            ValueError: If a conflicting record under a stored id is
                redelivered, the object has an open episode, or the
                record overlaps / precedes the object's tail record.
        """
        object_id = record.object_id
        existing = self._by_record_id.get(record.record_id)
        if existing is not None:
            if row_identity(existing) != row_identity(record):
                raise ValueError(
                    f"record {record.record_id} is already stored as "
                    f"{existing!r}; refusing conflicting redelivery of "
                    f"{record!r}"
                )
            return False
        if object_id in self._open:
            raise ValueError(
                f"object {object_id!r} has an open episode (record "
                f"{self._records[self._open[object_id]].record_id}); "
                "close_episode() before appending the next record"
            )
        sequence = self._by_object.get(object_id)
        if sequence:
            _validate_successor(object_id, sequence[-1], record)
        if self._persist and not self._backend.append_row(record, open=open):
            raise RuntimeError(
                f"backend already held record {record.record_id} the table "
                "did not know about; a storage backend must have exactly "
                "one writing table"
            )
        self._records.append(record)
        self._by_object.setdefault(object_id, []).append(record)
        self._start_times.setdefault(object_id, []).append(record.t_s)
        self._by_record_id[record.record_id] = record
        if open:
            self._open[object_id] = len(self._records) - 1
        self._generation += 1
        if self._persist:
            self._check_backend_sync()
        return True

    def extend_episode(self, object_id: ObjectId, t_e: float) -> TrackingRecord:
        """Advance the open episode's ``t_e`` (must not move backwards).

        Args:
            object_id: The object whose episode is open.
            t_e: The new end time.

        Returns:
            The updated record (a fresh immutable instance with the same
            ``record_id``).

        Raises:
            ValueError: If no episode is open or ``t_e`` retreats.
        """
        return self._advance_open(object_id, t_e, close=False)

    def close_episode(
        self, object_id: ObjectId, t_e: float | None = None
    ) -> TrackingRecord:
        """Fix the open episode's end time and make it a normal record.

        Args:
            object_id: The object whose episode is open.
            t_e: Final end time; ``None`` closes at the current extent.

        Returns:
            The final, closed record.

        Raises:
            ValueError: If no episode is open or ``t_e`` retreats.
        """
        return self._advance_open(object_id, t_e, close=True)

    def _advance_open(
        self, object_id: ObjectId, t_e: float | None, *, close: bool
    ) -> TrackingRecord:
        index = self._open.get(object_id)
        if index is None:
            raise ValueError(f"object {object_id!r} has no open episode")
        record = self._records[index]
        if t_e is None:
            t_e = record.t_e
        if t_e < record.t_e:
            raise ValueError(
                f"object {object_id!r}: episode end moved backwards "
                f"({t_e} < {record.t_e})"
            )
        updated = TrackingRecord(
            record_id=record.record_id,
            object_id=record.object_id,
            device_id=record.device_id,
            t_s=record.t_s,
            t_e=t_e,
        )
        if self._persist:
            self._backend.rewrite_tail_row(updated, open=not close)
        self._records[index] = updated
        self._by_object[object_id][-1] = updated
        self._by_record_id[updated.record_id] = updated
        if close:
            del self._open[object_id]
        self._generation += 1
        if self._persist:
            self._check_backend_sync()
        return updated

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def partition_view(
        self, object_ids: AbstractSet[ObjectId]
    ) -> "LiveTrackingTable":
        """A live table holding only the given objects' stream so far.

        Open episodes stay open in the view, so a shard can keep
        extending/closing them independently.  The view starts its own
        generation counter at the number of replayed mutations; it does
        not stay connected to the parent — it is the hand-off point when
        a coordinator partitions one incoming stream across shards.

        Args:
            object_ids: The objects the view keeps.

        Returns:
            A new :class:`LiveTrackingTable` over the filtered records.
        """
        open_indices = set(self._open.values())
        view = LiveTrackingTable()
        for index, record in enumerate(self._records):
            if record.object_id in object_ids:
                view.append(record, open=index in open_indices)
        return view

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------

    def freeze(self) -> ObjectTrackingTable:
        """An immutable :class:`ObjectTrackingTable` copy of the current state.

        Open episodes are included at their current extent; the live table
        itself stays live (freezing is a snapshot, not a transition).
        """
        return ObjectTrackingTable(self._records).freeze()
