"""Merging raw readings into tracking records.

An object in range is typically seen in multiple consecutive raw readings
by the same device; those are merged into a single tracking record
``(ID, objectID, deviceID, t_s, t_e)`` (paper, Section 2.1, citing [2]).

A run is broken when the device changes or when the gap between successive
readings of the same device exceeds ``max_gap`` — the object left the range
and returned later, which must become two records for the uncertainty
analysis to be correct.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .records import RawReading, TrackingRecord
from .table import ObjectTrackingTable

__all__ = ["merge_readings"]


def merge_readings(
    readings: Iterable[RawReading],
    sampling_interval: float = 1.0,
    max_gap: float | None = None,
) -> ObjectTrackingTable:
    """Build a frozen OTT from raw readings.

    Parameters
    ----------
    readings:
        Raw readings in any order.
    sampling_interval:
        The positioning system's sampling period; used for the default gap
        threshold.
    max_gap:
        Readings of the same (object, device) pair farther apart than this
        start a new record.  Defaults to ``1.5 * sampling_interval``, which
        tolerates timer jitter but never bridges a genuinely missed sample
        window.
    """
    if max_gap is None:
        max_gap = 1.5 * sampling_interval
    if max_gap <= 0:
        raise ValueError("max_gap must be positive")

    ordered = sorted(readings, key=lambda r: (str(r.object_id), r.t))
    table = ObjectTrackingTable()
    record_id = 0

    run_object = None
    run_device = None
    run_start = 0.0
    run_last = 0.0

    def close_run() -> None:
        nonlocal record_id
        if run_object is None:
            return
        table.append(
            TrackingRecord(
                record_id=record_id,
                object_id=run_object,
                device_id=run_device,
                t_s=run_start,
                t_e=run_last,
            )
        )
        record_id += 1

    for reading in ordered:
        same_run = (
            run_object == reading.object_id
            and run_device == reading.device_id
            and reading.t - run_last <= max_gap
        )
        if same_run:
            run_last = reading.t
            continue
        close_run()
        run_object = reading.object_id
        run_device = reading.device_id
        run_start = reading.t
        run_last = reading.t
    close_run()
    return table.freeze()
