"""End-to-end movement simulation: programs -> trajectories -> OTT.

Ties the tracking substrate together: generate ground-truth trajectories
with a motion model, run the proximity detection model over them, and merge
the raw readings into a frozen Object Tracking Table — the input format of
all query processing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..indoor.devices import Deployment
from ..indoor.floorplan import FloorPlan
from ..indoor.topology import DoorGraph
from .detection import detect_all
from .merger import merge_readings
from .motion import random_waypoint_trajectory, zipf_room_weights
from .records import RawReading
from .table import ObjectTrackingTable
from .trajectory import Trajectory

__all__ = ["SimulationResult", "simulate_trajectories", "simulate_random_waypoint"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything a simulation produced.

    ``trajectories`` is the ground truth (unknown to a real system);
    ``readings`` and ``ott`` are what the positioning system observes.
    """

    trajectories: tuple[Trajectory, ...]
    readings: tuple[RawReading, ...]
    ott: ObjectTrackingTable

    def trajectory_of(self, object_id) -> Trajectory:
        for trajectory in self.trajectories:
            if trajectory.object_id == object_id:
                return trajectory
        raise KeyError(f"no trajectory for object {object_id!r}")


def simulate_trajectories(
    trajectories: Sequence[Trajectory],
    deployment: Deployment,
    sampling_interval: float = 1.0,
    exclusive: bool = False,
) -> SimulationResult:
    """Run detection + merging over pre-built trajectories.

    ``exclusive=True`` resolves simultaneous sightings to the nearest
    device, which keeps the OTT consistent even when detection ranges
    overlap (paper, Section 3.4 Remark).
    """
    readings = detect_all(
        trajectories, deployment, sampling_interval, exclusive=exclusive
    )
    ott = merge_readings(readings, sampling_interval=sampling_interval)
    return SimulationResult(
        trajectories=tuple(trajectories),
        readings=tuple(readings),
        ott=ott,
    )


def simulate_random_waypoint(
    plan: FloorPlan,
    deployment: Deployment,
    num_objects: int,
    duration: float = 3600.0,
    speed: float = 1.1,
    sampling_interval: float = 1.0,
    pause_max: float = 60.0,
    seed: int = 42,
    t_start: float = 0.0,
    graph: DoorGraph | None = None,
    hotspot_exponent: float = 0.0,
) -> SimulationResult:
    """The paper's synthetic workload: random waypoint movement.

    All objects move at the fixed ``speed`` (which the experiments also use
    as ``V_max``, Section 5.1).  Each object gets an independent RNG stream
    derived from ``seed``, so results are reproducible and insensitive to
    the number of objects simulated before a given one.

    ``hotspot_exponent > 0`` biases destination choice by a Zipf popularity
    profile over rooms (:func:`repro.tracking.motion.zipf_room_weights`),
    producing the visit skew real indoor spaces show; ``0`` is the uniform
    textbook model.
    """
    if num_objects < 0:
        raise ValueError("num_objects must be non-negative")
    if graph is None:
        graph = DoorGraph(plan)
    room_weights = (
        zipf_room_weights(len(plan.rooms), hotspot_exponent)
        if hotspot_exponent > 0
        else None
    )
    trajectories = [
        random_waypoint_trajectory(
            object_id=f"o{i}",
            plan=plan,
            graph=graph,
            rng=random.Random(f"{seed}:{i}"),
            speed=speed,
            t_start=t_start,
            duration=duration,
            pause_max=pause_max,
            room_weights=room_weights,
        )
        for i in range(num_objects)
    ]
    return simulate_trajectories(trajectories, deployment, sampling_interval)
