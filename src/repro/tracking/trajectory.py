"""Ground-truth trajectories of simulated indoor moving objects.

A trajectory is a chain of *legs*: straight constant-speed walks between
waypoints and stationary dwells.  Trajectories serve two purposes:

* the detection model turns them into raw readings (what a real positioning
  system would observe), and
* they are the **ground truth** against which the uncertainty analysis can
  be validated — the paper's derivations guarantee that an object's true
  position always lies inside its uncertainty region, and the test suite
  checks exactly that.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..geometry import EPSILON, Mbr, Point, Region, Segment
from .records import ObjectId

__all__ = ["Leg", "Trajectory"]


@dataclass(frozen=True, slots=True)
class Leg:
    """A straight constant-speed walk (or a dwell when the points match)."""

    start: Point
    end: Point
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("leg ends before it starts")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def is_dwell(self) -> bool:
        return self.start.almost_equal(self.end)

    def speed(self) -> float:
        if self.duration <= EPSILON:
            return 0.0
        return self.start.distance_to(self.end) / self.duration

    def position_at(self, t: float) -> Point:
        """Position at time ``t`` (clamped to the leg's time span)."""
        if self.duration <= EPSILON or t <= self.t_start:
            return self.start
        if t >= self.t_end:
            return self.end
        fraction = (t - self.t_start) / self.duration
        return self.start.lerp(self.end, fraction)

    def segment(self) -> Segment:
        return Segment(self.start, self.end)

    def mbr(self) -> Mbr:
        return Mbr.from_points((self.start, self.end))


class Trajectory:
    """The full movement history of one object: contiguous legs."""

    def __init__(self, object_id: ObjectId, legs: Sequence[Leg]):
        if not legs:
            raise ValueError("a trajectory needs at least one leg")
        for previous, current in zip(legs, legs[1:]):
            if abs(current.t_start - previous.t_end) > 1e-6:
                raise ValueError(
                    f"object {object_id!r}: leg starting at {current.t_start} "
                    f"does not continue from {previous.t_end}"
                )
            if not current.start.almost_equal(previous.end, tolerance=1e-6):
                raise ValueError(
                    f"object {object_id!r}: trajectory teleports at "
                    f"t={current.t_start}"
                )
        self.object_id = object_id
        self.legs: tuple[Leg, ...] = tuple(legs)
        self._leg_starts = [leg.t_start for leg in self.legs]

    @property
    def t_start(self) -> float:
        return self.legs[0].t_start

    @property
    def t_end(self) -> float:
        return self.legs[-1].t_end

    def position_at(self, t: float) -> Point:
        """True position at ``t`` (clamped to the trajectory's time span)."""
        index = bisect.bisect_right(self._leg_starts, t) - 1
        index = max(0, index)
        return self.legs[index].position_at(t)

    def max_speed(self) -> float:
        return max(leg.speed() for leg in self.legs)

    def mbr(self) -> Mbr:
        return Mbr.union_all(leg.mbr() for leg in self.legs)

    # ------------------------------------------------------------------
    # Ground-truth probes (used to validate uncertainty regions)
    # ------------------------------------------------------------------

    def sample_times(self, t_from: float, t_to: float, step: float) -> list[float]:
        """Times in ``[t_from, t_to]`` clipped to the trajectory, plus leg
        boundaries — a covering probe set for invariants."""
        t_from = max(t_from, self.t_start)
        t_to = min(t_to, self.t_end)
        if t_to < t_from:
            return []
        times = set()
        t = t_from
        while t < t_to:
            times.add(t)
            t += step
        times.add(t_to)
        for boundary in self._leg_starts:
            if t_from <= boundary <= t_to:
                times.add(boundary)
        return sorted(times)

    def ever_inside(
        self, region: Region, t_from: float, t_to: float, step: float = 0.5
    ) -> bool:
        """Whether the sampled true position enters ``region`` in the window."""
        return any(
            region.contains(self.position_at(t))
            for t in self.sample_times(t_from, t_to, step)
        )
