"""Whole-program checkers for the repro.analysis v2 engine.

A checker runs once over the parsed :class:`~repro.analysis.program.ProjectModel`
plus its :class:`~repro.analysis.callgraph.CallGraph` (unlike the
per-file :mod:`~repro.analysis.rules`, which see one AST at a time).
"""

from __future__ import annotations

from .base import Checker, is_test_path
from .cache_coherence import CacheCoherenceChecker
from .determinism import DeterminismChecker
from .shard_safety import ShardSafetyChecker

__all__ = [
    "ALL_CHECKERS",
    "CacheCoherenceChecker",
    "Checker",
    "DeterminismChecker",
    "ShardSafetyChecker",
    "checkers_by_name",
    "is_test_path",
]

ALL_CHECKERS: tuple[Checker, ...] = (
    ShardSafetyChecker(),
    CacheCoherenceChecker(),
    DeterminismChecker(),
)


def checkers_by_name() -> dict[str, Checker]:
    """Registered checkers keyed by their suppression token."""
    return {checker.name: checker for checker in ALL_CHECKERS}
