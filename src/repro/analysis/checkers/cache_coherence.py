"""Checker: tracked-state mutators invalidate caches on the same path.

The caching layer (PR 4/6) memoises presence integrals, POI subset trees
and partial flows, keyed by the :class:`EvaluationContext`'s
``data_generation`` counter and per-object tail epochs.  The contract:
any function that appends or patches indexed/tracked state
(``ARTree.append_record``, ``ARTree.patch_tail``,
``LiveTrackingTable.append`` / ``extend_episode`` / ``close_episode``)
must — before returning — bump the generation counter, either directly
or by calling ``EvaluationContext.note_append``.  A mutator that can
return without invalidation leaves memoised results stale: queries keep
answering from cache while the underlying AR-tree has moved on.

The check is interprocedural: a function "invalidates" if it calls
``note_append`` / writes a generation counter itself **or** (confidently)
calls a function that does, computed as a fixpoint over the call graph.
Every tracked-mutator call site whose enclosing function does not
invalidate — and is not part of the storage layer that owns the state —
is flagged.  This is a per-function approximation of the real "on every
path" property: it catches the dangerous shape (mutate, never
invalidate) without path-sensitive analysis.
"""

from __future__ import annotations

from ..callgraph import CallGraph, CallSite
from ..linter import Diagnostic
from ..program import ProjectModel
from .base import Checker

__all__ = ["CacheCoherenceChecker"]

#: Tracked mutators: method name -> receiver class names that make the
#: call tracked.  ``None`` means "also tracked when the receiver type is
#: unknown" (safe for distinctive names only; ``append`` would otherwise
#: flag every ``list.append``).
TRACKED_MUTATORS: dict[str, frozenset[str | None]] = {
    "append_record": frozenset({"ARTree", None}),
    "patch_tail": frozenset({"ARTree", None}),
    "append": frozenset({"LiveTrackingTable"}),
    "extend_episode": frozenset({"LiveTrackingTable"}),
    "close_episode": frozenset({"LiveTrackingTable"}),
}

#: The storage layer owning the tracked state; its internals maintain
#: their own bookkeeping and are not re-checked here.
STORAGE_CLASSES = frozenset({"ARTree", "LiveTrackingTable"})
STORAGE_MODULES = frozenset({"repro.index.artree", "repro.tracking.table"})

#: Calls that count as invalidation.
INVALIDATOR_CALLS = frozenset({"note_append"})

#: Attribute writes that count as invalidation (generation counters and
#: epoch maps, by naming convention).
_INVALIDATOR_ATTR_MARKERS = ("generation", "epoch")


def _is_invalidating_attr(attr: str) -> bool:
    lowered = attr.lower()
    return any(marker in lowered for marker in _INVALIDATOR_ATTR_MARKERS)


class CacheCoherenceChecker(Checker):
    name = "cache-coherence"
    description = (
        "functions that append/patch tracked state must bump the "
        "generation counter or call note_append before returning"
    )
    paper_ref = (
        "incremental Φ(p) maintenance (PAPER.md §5): memoised presence "
        "and flow results are only reusable while the generation stamp "
        "matches the AR-tree contents"
    )

    def check(
        self, model: ProjectModel, graph: CallGraph, *, report_all: bool = False
    ) -> list[Diagnostic]:
        invalidating = self._invalidating_functions(model, graph)
        diagnostics: list[Diagnostic] = []
        for site in graph.sites:
            if not self._tracked_site(site):
                continue
            module = model.modules.get(site.module)
            if module is None or not self.reportable(
                module.path, report_all=report_all
            ):
                continue
            if self._storage_internal(model, site.caller):
                continue
            if site.caller in invalidating:
                continue
            receiver = site.receiver or "<expr>"
            diagnostics.append(
                self.diagnostic(
                    module.path,
                    site.node,
                    f"{receiver}.{site.name}() mutates tracked state but the "
                    "enclosing function never bumps the generation counter "
                    "nor calls note_append (directly or via a callee); "
                    "memoised presence/flow results go stale",
                )
            )
        return diagnostics

    # ------------------------------------------------------------------

    @staticmethod
    def _tracked_site(site: CallSite) -> bool:
        allowed = TRACKED_MUTATORS.get(site.name)
        if allowed is None:
            return False
        if site.receiver_type is not None:
            return site.receiver_type.rsplit(".", 1)[-1] in allowed
        return None in allowed

    def _storage_internal(self, model: ProjectModel, qualname: str) -> bool:
        function = model.functions.get(qualname)
        if function is None:
            return qualname.rsplit(".", 1)[0] in STORAGE_MODULES
        if function.module in STORAGE_MODULES:
            return True
        cls = function.cls
        return cls is not None and cls.rsplit(".", 1)[-1] in STORAGE_CLASSES

    def _invalidating_functions(
        self, model: ProjectModel, graph: CallGraph
    ) -> set[str]:
        """Functions that (transitively) invalidate — a reverse fixpoint."""
        invalidating: set[str] = set()
        for qualname, sites in graph.sites_by_caller.items():
            if any(site.name in INVALIDATOR_CALLS for site in sites):
                invalidating.add(qualname)
        for write in model.attribute_writes:
            if _is_invalidating_attr(write.attr):
                invalidating.add(write.function)
        # Propagate along reverse edges: a caller of an invalidating
        # function invalidates too.  Worklist until fixpoint.
        queue = list(invalidating)
        while queue:
            current = queue.pop()
            for caller in graph.reverse.get(current, set()):
                if caller not in invalidating:
                    invalidating.add(caller)
                    queue.append(caller)
        return invalidating
