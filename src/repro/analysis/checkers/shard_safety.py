"""Checker: shard state is only mutated through the coordinator/engine seam.

PR 6 split the engine into :class:`~repro.core.shard.ShardState`
partitions behind a coordinator that routes every mutation to the owning
shard and keeps three things in lockstep: the routing partition
(``crc32(object_id) % N``), the live table's generation counter and the
context's per-object cache epochs.  A ``ShardState`` (or the AR-tree /
live table / cache internals it owns) mutated behind the coordinator's
back silently diverges from all three — queries keep answering, with
wrong bits.

Three whole-program checks, all interprocedural over the call graph:

1. **External attribute writes** — ``shard.artree = ...``,
   ``tree._delta = ...`` and friends are flagged anywhere outside the
   guarded class itself and the implementation modules.
2. **Mutator reachability** — calls of the guarded mutator methods
   (``ingest_batch``, ``append_record``, ``patch_tail``,
   ``LiveTrackingTable.append`` …) are flagged unless the calling
   function is part of the ingest seam (the guarded classes themselves,
   the engine/coordinator facades, or the forked worker loop).  Unlike
   the per-file ``context-bypass`` rule this is receiver-type aware
   (``entries.append(...)`` on a list is not a finding) and sees through
   helper indirection.
3. **Fork divergence** — a closure or lambda handed to an executor
   ``run()`` / ``Process(target=...)`` that mutates state captured from
   the submitting function is flagged: with a forked worker the write
   lands in the child's copy-on-write memory and the coordinator's copy
   silently diverges.
"""

from __future__ import annotations

import ast

from ..callgraph import CallGraph, CallSite
from ..linter import Diagnostic
from ..program import FunctionInfo, ProjectModel
from .base import Checker

__all__ = ["ShardSafetyChecker"]

#: Classes whose state is coordinator-owned (matched by bare name so the
#: checker also works on fixture trees that model the shapes).
GUARDED_CLASSES = frozenset(
    {
        "ShardState",
        "ARTree",
        "LiveTrackingTable",
        "EvaluationContext",
        "LruCache",
        "SQLiteBackend",
        "MemoryBackend",
    }
)

#: Facade classes allowed to drive shard mutations (the ingest seam).
SEAM_CLASSES = GUARDED_CLASSES | frozenset(
    {"FlowEngine", "LiveFlowEngine", "ShardedFlowEngine"}
)

#: Modules that implement the seam and may touch internals directly.
SEAM_MODULES = frozenset(
    {
        "repro.core.shard",
        "repro.core.engine",
        "repro.core.coordinator",
        "repro.core.context",
        "repro.core.caching",
        "repro.index.artree",
        "repro.tracking.table",
        # The storage package implements the backends; the CSV importer
        # and the datagen --store CLI are producer seams that write to a
        # store *before* any table exists (PR 8).
        "repro.storage.base",
        "repro.storage.memory",
        "repro.storage.sqlite",
        "repro.storage.env",
        "repro.tracking.io",
        "repro.datagen.__main__",
    }
)

#: Free-standing functions that are part of the seam (worker loops).
SEAM_FUNCTIONS = frozenset({"_shard_worker"})

#: Guarded mutator methods: name -> receiver class names that make the
#: call guarded.  ``None`` in the set means "also guard when the receiver
#: type cannot be inferred" (distinctive names only).
GUARDED_MUTATORS: dict[str, frozenset[str | None]] = {
    "ingest_batch": frozenset({"ShardState", None}),
    "ingest_open_episode": frozenset({"ShardState", None}),
    "extend_open_episode": frozenset({"ShardState", None}),
    "close_open_episode": frozenset({"ShardState", None}),
    "append_record": frozenset({"ARTree", None}),
    "patch_tail": frozenset({"ARTree", None}),
    # Common names: only guarded when the receiver provably is the table.
    "append": frozenset({"LiveTrackingTable"}),
    "extend_episode": frozenset({"LiveTrackingTable"}),
    "close_episode": frozenset({"LiveTrackingTable"}),
    # Storage-backend mutators (PR 8): a direct write desynchronises the
    # durable generation counter from the table/index/cache lockstep.
    "append_row": frozenset({"SQLiteBackend", "MemoryBackend", None}),
    "rewrite_tail_row": frozenset({"SQLiteBackend", "MemoryBackend", None}),
}


class ShardSafetyChecker(Checker):
    name = "shard-safety"
    description = (
        "ShardState / AR-tree / cache internals are mutated only from the "
        "coordinator/engine ingest seam, and no executor-submitted "
        "callable mutates captured coordinator state"
    )
    paper_ref = (
        "Definition 2's per-object flow decomposition: the sharded "
        "Φ(p) = Σ_o φ(o) merge is bit-identical to the monolith only "
        "while partition routing, generation counters and cache epochs "
        "move in lockstep (PR 6 scale-out contract)"
    )

    def check(
        self, model: ProjectModel, graph: CallGraph, *, report_all: bool = False
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(self._check_writes(model, graph, report_all))
        diagnostics.extend(self._check_mutator_calls(model, graph, report_all))
        diagnostics.extend(self._check_fork_divergence(model, graph, report_all))
        return diagnostics

    # ------------------------------------------------------------------
    # Seam membership
    # ------------------------------------------------------------------

    def _in_seam(self, model: ProjectModel, qualname: str) -> bool:
        function = model.functions.get(qualname)
        if function is None:
            # Module-level scope: seam modules only.
            module = qualname.rsplit(".", 1)[0]
            return module in SEAM_MODULES
        if function.module in SEAM_MODULES:
            return True
        if function.name in SEAM_FUNCTIONS:
            return True
        cls = function.cls
        if cls is not None and cls.rsplit(".", 1)[-1] in SEAM_CLASSES:
            return True
        # Nested functions inherit their parent's seam membership.
        parent = qualname.rsplit(".", 1)[0]
        if parent in model.functions:
            return self._in_seam(model, parent)
        return False

    # ------------------------------------------------------------------
    # 1. External attribute writes
    # ------------------------------------------------------------------

    def _check_writes(
        self, model: ProjectModel, graph: CallGraph, report_all: bool
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for write in model.attribute_writes:
            module = model.modules.get(write.module)
            if module is None or not self.reportable(
                module.path, report_all=report_all
            ):
                continue
            function = model.functions.get(write.function)
            if function is None:
                continue
            # `self.x = ...` inside the guarded class is the implementation.
            receiver_cls: str | None = None
            if write.obj == "self":
                if function.cls is not None:
                    receiver_cls = function.cls.rsplit(".", 1)[-1]
                if receiver_cls in GUARDED_CLASSES:
                    continue
            else:
                inferred = graph.infer_type(function, write.value_node)
                if inferred is not None:
                    receiver_cls = inferred.rsplit(".", 1)[-1]
            if receiver_cls not in GUARDED_CLASSES:
                continue
            if self._in_seam(model, write.function):
                continue
            diagnostics.append(
                self.diagnostic(
                    module.path,
                    None,
                    f"attribute write {write.obj}.{write.attr} mutates "
                    f"{receiver_cls} state outside the coordinator/engine "
                    "ingest seam; route mutations through the engine facade "
                    "so partitioning, generation and cache epochs stay "
                    "coherent",
                    line=write.line,
                    col=write.col,
                )
            )
        return diagnostics

    # ------------------------------------------------------------------
    # 2. Guarded mutator calls outside the seam
    # ------------------------------------------------------------------

    def _guarded_site(self, site: CallSite) -> str | None:
        """The guarded receiver class for ``site``, or ``None``."""
        allowed = GUARDED_MUTATORS.get(site.name)
        if allowed is None:
            return None
        receiver_cls: str | None = None
        if site.receiver_type is not None:
            receiver_cls = site.receiver_type.rsplit(".", 1)[-1]
        if receiver_cls is not None:
            return receiver_cls if receiver_cls in allowed else None
        return site.name if None in allowed else None

    def _check_mutator_calls(
        self, model: ProjectModel, graph: CallGraph, report_all: bool
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for site in graph.sites:
            guarded = self._guarded_site(site)
            if guarded is None:
                continue
            module = model.modules.get(site.module)
            if module is None or not self.reportable(
                module.path, report_all=report_all
            ):
                continue
            if self._in_seam(model, site.caller):
                continue
            receiver = site.receiver or "<expr>"
            diagnostics.append(
                self.diagnostic(
                    module.path,
                    site.node,
                    f"{receiver}.{site.name}() mutates shard-owned state "
                    "outside the coordinator/engine ingest seam; use "
                    "FlowEngine.ingest()/ShardedFlowEngine.ingest() (or the "
                    "open-episode facade methods) instead",
                )
            )
        return diagnostics

    # ------------------------------------------------------------------
    # 3. Fork divergence
    # ------------------------------------------------------------------

    def _check_fork_divergence(
        self, model: ProjectModel, graph: CallGraph, report_all: bool
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for function in list(model.functions.values()):
            module = model.modules.get(function.module)
            if module is None or not self.reportable(
                module.path, report_all=report_all
            ):
                continue
            bound = _bound_names(function.node)
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_submission(node):
                    continue
                for submitted in self._submitted_callables(node):
                    diagnostics.extend(
                        self._check_submitted(
                            model, module.path, function, submitted, bound
                        )
                    )
        return diagnostics

    @staticmethod
    def _is_submission(call: ast.Call) -> bool:
        """Whether ``call`` hands work to an executor or worker process."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in ("run", "submit"):
            receiver = func.value
            text = ""
            if isinstance(receiver, ast.Name):
                text = receiver.id
            elif isinstance(receiver, ast.Attribute):
                text = receiver.attr
            return "executor" in text.lower() or "pool" in text.lower()
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name == "Process" and any(
            keyword.arg == "target" for keyword in call.keywords
        )

    def _submitted_callables(
        self, call: ast.Call
    ) -> list[ast.Lambda | ast.expr]:
        """Lambda / local-function arguments of a submission call."""
        candidates: list[ast.expr] = []
        for arg in call.args:
            if isinstance(arg, (ast.List, ast.Tuple)):
                candidates.extend(arg.elts)
            else:
                candidates.append(arg)
        for keyword in call.keywords:
            if keyword.arg == "target":
                candidates.append(keyword.value)
        return [
            candidate
            for candidate in candidates
            if isinstance(candidate, (ast.Lambda, ast.Name))
        ]

    def _check_submitted(
        self,
        model: ProjectModel,
        path: str,
        function: FunctionInfo,
        submitted: ast.expr,
        enclosing_bound: frozenset[str],
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        if isinstance(submitted, ast.Lambda):
            body_writes = _closure_mutations(submitted, enclosing_bound)
            for line, col, detail in body_writes:
                diagnostics.append(
                    self.diagnostic(
                        path,
                        None,
                        "fork-divergence: executor-submitted lambda "
                        f"mutates captured state ({detail}); a forked "
                        "worker's write lands in the child process and the "
                        "coordinator's copy silently diverges",
                        line=line,
                        col=col,
                    )
                )
            return diagnostics
        if isinstance(submitted, ast.Name):
            nested = model.functions.get(f"{function.qualname}.{submitted.id}")
            if nested is None:
                # Module-level target functions capture nothing.
                return diagnostics
            body_writes = _closure_mutations(nested.node, enclosing_bound)
            for line, col, detail in body_writes:
                diagnostics.append(
                    self.diagnostic(
                        path,
                        None,
                        "fork-divergence: executor-submitted closure "
                        f"{submitted.id!r} mutates captured state ({detail}); "
                        "a forked worker's write lands in the child process "
                        "and the coordinator's copy silently diverges",
                        line=line,
                        col=col,
                    )
                )
        return diagnostics


def _bound_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """Parameter and locally-assigned names of ``node``."""
    bound: set[str] = set()
    args = node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        bound.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            bound.add(sub.id)
    return frozenset(bound)


def _callable_bound(node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    bound: set[str] = set()
    args = node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        bound.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            bound.add(sub.id)
    return frozenset(bound)


def _root_name(expr: ast.expr) -> str | None:
    """The leftmost name of an attribute/subscript chain."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _closure_mutations(
    node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef,
    enclosing_bound: frozenset[str],
) -> list[tuple[int, int, str]]:
    """(line, col, detail) for each mutation of captured state in ``node``.

    A mutation counts when its receiver's root name is *free* in the
    submitted callable but *bound* in the submitting function (a genuine
    capture), or is ``self``.
    """
    own_bound = _callable_bound(node)
    findings: list[tuple[int, int, str]] = []

    def captured(root: str | None) -> bool:
        if root is None:
            return False
        if root in own_bound:
            return False
        return root == "self" or root in enclosing_bound

    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and captured(_root_name(target)):
                        findings.append(
                            (
                                sub.lineno,
                                sub.col_offset,
                                f"write to {ast.unparse(target)}",
                            )
                        )
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in GUARDED_MUTATORS
                    and captured(_root_name(func.value))
                ):
                    findings.append(
                        (
                            sub.lineno,
                            sub.col_offset,
                            f"call {ast.unparse(func)}()",
                        )
                    )
                elif (
                    isinstance(func, ast.Name)
                    and func.id == "setattr"
                    and sub.args
                    and captured(_root_name(sub.args[0]))
                ):
                    findings.append(
                        (
                            sub.lineno,
                            sub.col_offset,
                            f"setattr on {ast.unparse(sub.args[0])}",
                        )
                    )
    return findings
