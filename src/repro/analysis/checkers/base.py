"""The whole-program checker protocol.

A :class:`Checker` is the interprocedural sibling of the per-file
:class:`~repro.analysis.rules.base.Rule`: it runs once over the parsed
:class:`~repro.analysis.program.ProjectModel` plus its
:class:`~repro.analysis.callgraph.CallGraph`, and emits the same
:class:`~repro.analysis.linter.Diagnostic` objects — so suppression
pragmas (``# repro: allow(shard-safety): ...``), baselines and the output
formats are shared with the linter.
"""

from __future__ import annotations

import ast

from ..linter import Diagnostic
from ..callgraph import CallGraph
from ..program import ProjectModel

__all__ = ["Checker", "is_test_path"]

#: Path parts whose modules are parsed into the model (their calls count
#: for reachability) but not *reported* on by default: tests exercise
#: seams on purpose, benchmarks and examples drive public APIs.
_UNREPORTED_PARTS = frozenset({"tests", "benchmarks", "examples"})


def is_test_path(path: str) -> bool:
    """Whether ``path`` belongs to tests/benchmarks/examples."""
    from pathlib import PurePath

    return bool(_UNREPORTED_PARTS.intersection(PurePath(path).parts))


class Checker:
    """One named whole-program check.

    Subclasses set ``name`` (the suppression token), ``description`` and
    ``paper_ref``, and implement :meth:`check`.  ``report_all`` is set by
    the driver when fixture trees are analyzed (tests included).
    """

    name: str = ""
    description: str = ""
    paper_ref: str = ""

    def check(
        self, model: ProjectModel, graph: CallGraph, *, report_all: bool = False
    ) -> list[Diagnostic]:
        """All violations in the program."""
        raise NotImplementedError

    def reportable(self, path: str, *, report_all: bool) -> bool:
        """Whether findings in ``path`` are reported (see module note)."""
        return report_all or not is_test_path(path)

    def diagnostic(
        self, path: str, node: ast.AST | None, message: str,
        line: int | None = None, col: int | None = None,
    ) -> Diagnostic:
        """A diagnostic at ``node`` (or an explicit ``line``/``col``)."""
        return Diagnostic(
            path=path,
            line=line if line is not None else getattr(node, "lineno", 1),
            column=(
                col if col is not None else getattr(node, "col_offset", 0)
            )
            + 1,
            rule=self.name,
            message=message,
        )
