"""Checker: unordered iteration must not feed float accumulation.

Float addition is not associative, so the order in which per-object
contributions are accumulated changes the low bits of Φ(p).  The
coordinator keeps the sharded engine bit-identical to the monolith by
re-sorting every contribution on the canonical total key
``(t1, t2, record_id)`` before accumulating (PR 6's global-sort merge
contract).  Any code path that instead iterates a ``set`` / ``frozenset``
(or a dict built from one) and folds floats in that order is
nondeterministic across hash seeds and across runs.

What is flagged: a ``for`` loop over an unordered iterable whose body
accumulates floats (``acc += x``, ``acc = acc + x``,
``d[k] = d.get(k, …) + x``), and ``sum(...)`` over an unordered iterable
or a generator driven by one.

What is *not* flagged: plain dict iteration (CPython dicts are
insertion-ordered, and the ingest order is part of the replayable input);
iterables passed through ``sorted(...)``; ``math.fsum`` (error-free up
to rounding of the final result, order-insensitive for the use cases
here); pure-int counters (``count += 1``).
"""

from __future__ import annotations

import ast

from ..callgraph import CallGraph
from ..linter import Diagnostic
from ..program import FunctionInfo, ProjectModel, annotation_name
from .base import Checker

__all__ = ["DeterminismChecker"]

#: Annotation names that denote unordered collections.
SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Set methods returning another (unordered) set.
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Calls that launder order away entirely — iterating their result is
#: deterministic (or not iteration at all).
_ORDER_CLEANSING_CALLS = frozenset({"sorted", "min", "max", "len", "fsum"})

#: Wrappers that *preserve* the unordered iteration order.
_ORDER_PRESERVING_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "set/dict-view iteration feeding float accumulation must be "
        "sorted on a total key first"
    )
    paper_ref = (
        "Φ(p) = Σ_o φ(o) (PAPER.md §4): the reported flows are only "
        "reproducible bit-for-bit if contributions are accumulated in a "
        "canonical order — the coordinator sorts on (t1, t2, record_id)"
    )

    def check(
        self, model: ProjectModel, graph: CallGraph, *, report_all: bool = False
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for function in model.functions.values():
            module = model.modules.get(function.module)
            if module is None or not self.reportable(
                module.path, report_all=report_all
            ):
                continue
            analysis = _FunctionAnalysis(self, model, graph, function)
            diagnostics.extend(
                self.diagnostic(module.path, node, message)
                for node, message in analysis.findings()
            )
        return diagnostics

    # Shared with _FunctionAnalysis: does an attribute access / method
    # call on a known class return a set, per its annotations?
    def _attr_yields_set(
        self,
        model: ProjectModel,
        graph: CallGraph,
        function: FunctionInfo,
        base: ast.expr,
        attr: str,
        *,
        call: bool,
    ) -> bool:
        base_type = graph.infer_type(function, base)
        if base_type is None:
            return False
        class_info = model.classes.get(base_type)
        while class_info is not None:
            member = class_info.methods.get(attr)
            if member is not None and (call or member.is_property):
                name = (
                    annotation_name(member.node.returns)
                    if member.node.returns is not None
                    else None
                )
                return name in SET_TYPE_NAMES
            nxt = None
            for base_name in class_info.base_names:
                resolved = model.resolve_class(base_name.rsplit(".", 1)[-1])
                if resolved is not None and resolved is not class_info:
                    nxt = resolved
                    break
            class_info = nxt
        return False


class _FunctionAnalysis:
    """Unordered-taint plus accumulation scan for one function body."""

    def __init__(
        self,
        checker: DeterminismChecker,
        model: ProjectModel,
        graph: CallGraph,
        function: FunctionInfo,
    ) -> None:
        self.checker = checker
        self.model = model
        self.graph = graph
        self.function = function
        self.tainted: set[str] = set()
        self.tainted_dicts: set[str] = set()
        self._collect_taint()

    # ------------------------------------------------------------------
    # Taint collection
    # ------------------------------------------------------------------

    def _collect_taint(self) -> None:
        node = self.function.node
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                if annotation_name(arg.annotation) in SET_TYPE_NAMES:
                    self.tainted.add(arg.arg)
        # Two passes so `b = a` after `a = set(...)` is seen regardless
        # of traversal order quirks.
        for _ in range(2):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    if not isinstance(target, ast.Name):
                        continue
                    if self.is_unordered(sub.value):
                        self.tainted.add(target.id)
                    elif self._is_unordered_dict(sub.value):
                        self.tainted_dicts.add(target.id)
                    else:
                        self.tainted.discard(target.id)
                        self.tainted_dicts.discard(target.id)
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    if annotation_name(sub.annotation) in SET_TYPE_NAMES:
                        self.tainted.add(sub.target.id)

    def _is_unordered_dict(self, expr: ast.expr) -> bool:
        """A dict whose key order comes from an unordered source."""
        if isinstance(expr, ast.DictComp):
            return any(
                self.is_unordered(gen.iter) for gen in expr.generators
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "fromkeys"
                and expr.args
            ):
                return self.is_unordered(expr.args[0])
            if isinstance(func, ast.Name) and func.id == "dict" and expr.args:
                return self.is_unordered(expr.args[0])
        return False

    # ------------------------------------------------------------------
    # Unordered classification
    # ------------------------------------------------------------------

    def is_unordered(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_unordered(expr.left) or self.is_unordered(
                expr.right
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id in _ORDER_CLEANSING_CALLS:
                    return False
                if func.id in _ORDER_PRESERVING_CALLS and expr.args:
                    return self.is_unordered(expr.args[0])
                return False
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_RETURNING_METHODS:
                    if self.is_unordered(func.value):
                        return True
                if func.attr in ("keys", "values", "items"):
                    return self._dict_view_unordered(func.value)
                return self.checker._attr_yields_set(
                    self.model,
                    self.graph,
                    self.function,
                    func.value,
                    func.attr,
                    call=True,
                )
            return False
        if isinstance(expr, ast.Attribute):
            # Annotated set-valued property on a known class.
            return self.checker._attr_yields_set(
                self.model,
                self.graph,
                self.function,
                expr.value,
                expr.attr,
                call=False,
            )
        return False

    def _dict_view_unordered(self, base: ast.expr) -> bool:
        if isinstance(base, ast.Name):
            return base.id in self.tainted_dicts or base.id in self.tainted
        return self.is_unordered(base)

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------

    def findings(self) -> list[tuple[ast.AST, str]]:
        found: list[tuple[ast.AST, str]] = []
        for sub in ast.walk(self.function.node):
            if isinstance(sub, ast.For) and self.is_unordered(sub.iter):
                accumulation = _first_float_accumulation(sub.body)
                if accumulation is not None:
                    found.append(
                        (
                            sub.iter,
                            "iteration over an unordered collection "
                            f"({ast.unparse(sub.iter)}) feeds float "
                            f"accumulation ({ast.unparse(accumulation)}); "
                            "float addition is not associative — sort on a "
                            "total key first (cf. the coordinator's "
                            "(t1, t2, record_id) merge)",
                        )
                    )
            elif isinstance(sub, ast.Call):
                found.extend(self._check_sum(sub))
        return found

    def _check_sum(self, call: ast.Call) -> list[tuple[ast.AST, str]]:
        func = call.func
        if not (isinstance(func, ast.Name) and func.id == "sum"):
            return []
        if not call.args:
            return []
        arg = call.args[0]
        unordered_source: ast.expr | None = None
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in arg.generators:
                if self.is_unordered(gen.iter):
                    unordered_source = gen.iter
                    break
        elif self.is_unordered(arg):
            unordered_source = arg
        if unordered_source is None:
            return []
        return [
            (
                call,
                "sum() over an unordered collection "
                f"({ast.unparse(unordered_source)}) is "
                "order-nondeterministic for floats; sort on a total key "
                "or use math.fsum",
            )
        ]


def _first_float_accumulation(body: list[ast.stmt]) -> ast.AST | None:
    """The first float-accumulation statement inside ``body``, if any."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Add):
                if _is_int_literal(sub.value):
                    continue
                return sub
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                value = sub.value
                if not (
                    isinstance(value, ast.BinOp)
                    and isinstance(value.op, ast.Add)
                ):
                    continue
                try:
                    target_src = ast.unparse(target)
                except Exception:  # pragma: no cover - defensive
                    continue
                left, right = value.left, value.right
                # acc = acc + x  /  acc = x + acc
                for side in (left, right):
                    try:
                        if ast.unparse(side) == target_src:
                            return sub
                    except Exception:  # pragma: no cover - defensive
                        continue
                # d[k] = d.get(k, default) + x
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    for side in (left, right):
                        if (
                            isinstance(side, ast.Call)
                            and isinstance(side.func, ast.Attribute)
                            and side.func.attr == "get"
                            and isinstance(side.func.value, ast.Name)
                            and side.func.value.id == target.value.id
                        ):
                            return sub
    return None


def _is_int_literal(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, int) and not isinstance(
            expr.value, bool
        )
    if isinstance(expr, ast.UnaryOp) and isinstance(
        expr.op, (ast.UAdd, ast.USub)
    ):
        return _is_int_literal(expr.operand)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id == "len"
    return False
