"""The whole-program project model (``repro.analysis`` v2).

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time, which is enough for syntactic invariants (float equality, unseeded
RNGs) but blind to the repo's *architectural* ones: who may mutate a
:class:`~repro.core.shard.ShardState`, whether an AR-tree append always
bumps the cache generation on the same path, which iteration orders feed
the bit-reproducible flow accumulation.  Those are properties of the
program, not of a file.

This module parses a source tree **once** into a :class:`ProjectModel`:

* a module / class / function symbol table keyed by dotted qualname
  (``repro.core.shard.ShardState.ingest_batch``),
* per-module import maps (aliases resolved to dotted targets, relative
  imports resolved against the package),
* an attribute-write index (every ``obj.attr = ...`` / ``obj.attr += ...``
  / ``del obj.attr``, attributed to its enclosing function),
* per-class attribute types harvested from ``self.x = Cls(...)``
  assignments, annotations and property return types.

:mod:`repro.analysis.callgraph` builds the approximate call graph on top
of this model, and the checkers in :mod:`repro.analysis.checkers` consume
both.  The model is deliberately approximate — no imports are executed,
resolution is name- and annotation-driven — which keeps it fast enough to
run on every commit and sound enough for the repo's own, fully-annotated
code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "AttributeWrite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "MODULE_SCOPE",
    "annotation_name",
    "iter_python_files",
    "module_name_for",
]

#: The pseudo-function qualname suffix for module-level statements.
MODULE_SCOPE = "<module>"


@dataclass(slots=True)
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    """Dotted name, e.g. ``repro.core.shard.ShardState.ingest_batch``."""

    module: str
    """The enclosing module's dotted name."""

    name: str
    """The bare function name."""

    cls: str | None
    """The owning class's qualname for methods, else ``None``."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    """The parsed definition."""

    path: str
    """Source file path (as passed to the model builder)."""

    is_property: bool = False
    """Whether the function is decorated with ``@property``."""

    @property
    def line(self) -> int:
        """The definition's first line."""
        return self.node.lineno


@dataclass(slots=True)
class ClassInfo:
    """One class in the project."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    base_names: tuple[str, ...] = ()
    """Raw (unresolved) base-class expressions, e.g. ``FlowEngine``."""

    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    """``self.<attr>`` -> class *name* harvested from assignments and
    annotations (bare names; resolve against the model's class table)."""


@dataclass(slots=True)
class AttributeWrite:
    """One ``obj.attr = ...`` / ``obj.attr += ...`` / ``del obj.attr``."""

    module: str
    function: str
    """Qualname of the enclosing function (``...<module>`` at top level)."""

    obj: str
    """The receiver expression's source text (``self``, ``shard.ctx`` …)."""

    attr: str
    line: int
    col: int
    value_node: ast.expr
    """The receiver expression node (for type inference)."""

    augmented: bool = False
    """Whether the write was a ``+=``-style augmented assignment."""


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    """Local alias -> dotted target (``ShardState`` ->
    ``repro.core.shard.ShardState``)."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def module_name_for(path: Path) -> str:
    """The dotted module name of ``path``, derived from ``__init__.py``.

    Walks up while the parent directory is a package; files outside any
    package (test fixtures, scripts) get their bare stem as the name.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


#: Directory names skipped while walking a tree (never when a file is
#: passed explicitly).  ``fixtures`` holds seeded-violation inputs for the
#: analysis' own tests, which must not fail a clean-tree run.
SKIPPED_DIR_NAMES = frozenset({"__pycache__", "fixtures"})


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield the python files under ``paths`` (sorted, fixtures skipped)."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not SKIPPED_DIR_NAMES.intersection(candidate.parts)
            )
        else:
            yield path


def _resolve_relative(package: str, module: str | None, level: int) -> str:
    """Resolve a ``from ...x import y`` target against ``package``."""
    if level == 0:
        return module or ""
    parts = package.split(".")
    # level=1 strips the module's own name; deeper levels strip packages.
    base = parts[: len(parts) - level]
    if module:
        base.append(module)
    return ".".join(base)


class _ModuleExtractor(ast.NodeVisitor):
    """Single pass over one module: symbols, imports, attribute writes."""

    def __init__(self, info: ModuleInfo, writes: list[AttributeWrite]):
        self.info = info
        self.writes = writes
        self._scope: list[str] = [f"{info.name}.{MODULE_SCOPE}"]
        self._class: list[ClassInfo] = []
        self.info_all_functions: list[FunctionInfo] = []
        self.info_all_classes: list[ClassInfo] = []

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.info.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_relative(self.info.name, node.module, node.level)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.imports[local] = (
                f"{base}.{alias.name}" if base else alias.name
            )
        self.generic_visit(node)

    # -- definitions ---------------------------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        owner = self._class[-1] if self._class else None
        parent = self._scope[-1]
        if parent.endswith(f".{MODULE_SCOPE}"):
            parent = parent[: -len(MODULE_SCOPE) - 1]
        qualname = f"{parent}.{node.name}"
        is_property = any(
            (isinstance(dec, ast.Name) and dec.id == "property")
            or (isinstance(dec, ast.Attribute) and dec.attr in ("getter", "setter"))
            for dec in node.decorator_list
        )
        info = FunctionInfo(
            qualname=qualname,
            module=self.info.name,
            name=node.name,
            cls=owner.qualname if owner is not None else None,
            node=node,
            path=self.info.path,
            is_property=is_property,
        )
        if owner is not None and self._scope[-1] == owner.qualname:
            owner.methods[node.name] = info
        elif len(self._scope) == 1:
            self.info.functions[node.name] = info
        self.info_all_functions.append(info)
        self._scope.append(qualname)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        parent = self._scope[-1]
        if parent.endswith(f".{MODULE_SCOPE}"):
            parent = parent[: -len(MODULE_SCOPE) - 1]
        qualname = f"{parent}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=self.info.name,
            name=node.name,
            node=node,
            path=self.info.path,
            base_names=tuple(
                source
                for base in node.bases
                if (source := _expr_source(base)) is not None
            ),
        )
        if len(self._scope) == 1:
            self.info.classes[node.name] = info
        self.info_all_classes.append(info)
        self._scope.append(qualname)
        self._class.append(info)
        self.generic_visit(node)
        self._class.pop()
        self._scope.pop()

    # -- attribute writes ----------------------------------------------

    def _record_write(self, target: ast.Attribute, augmented: bool) -> None:
        obj = _expr_source(target.value) or "<expr>"
        self.writes.append(
            AttributeWrite(
                module=self.info.name,
                function=self._scope[-1],
                obj=obj,
                attr=target.attr,
                line=target.lineno,
                col=target.col_offset,
                value_node=target.value,
                augmented=augmented,
            )
        )
        # Harvest `self.x = Cls(...)` / `self.x: Cls` attribute types.
        if (
            not augmented
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class
        ):
            self._class[-1].attr_types.setdefault(target.attr, "")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.ctx, ast.Store
                ):
                    self._record_write(sub, augmented=False)
                    self._harvest_attr_type(sub, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._record_write(node.target, augmented=False)
            annotation = annotation_name(node.annotation)
            if (
                annotation
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
                and self._class
            ):
                self._class[-1].attr_types[node.target.attr] = annotation
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._record_write(node.target, augmented=True)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                self._record_write(target, augmented=False)
        self.generic_visit(node)

    def _harvest_attr_type(self, target: ast.Attribute, value: ast.expr) -> None:
        if not (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class
        ):
            return
        cls = self._class[-1]
        if isinstance(value, ast.Call):
            callee = _expr_source(value.func)
            if not callee:
                return
            # The class-like segment of the callee chain: `ARTree(...)`,
            # `index.ARTree(...)` and the classmethod-constructor shape
            # `ARTree.build(...)` all record "ARTree".
            for segment in reversed(callee.split(".")):
                if segment[:1].isupper():
                    cls.attr_types[target.attr] = segment
                    break


def _expr_source(node: ast.expr) -> str | None:
    """``ast.unparse`` for simple name/attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_source(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def annotation_name(node: ast.expr) -> str | None:
    """The class name an annotation refers to (``X | None`` -> ``X``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the first identifier.
        text = node.value.strip().strip('"')
        head = text.split("|")[0].strip()
        return head.split("[")[0].strip() or None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return annotation_name(node.left) or annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        head = annotation_name(node.value)
        if head in ("Optional", "Final", "ClassVar", "Annotated"):
            if isinstance(node.slice, ast.Tuple) and node.slice.elts:
                return annotation_name(node.slice.elts[0])
            if isinstance(node.slice, ast.expr):
                return annotation_name(node.slice)
        return head
    return None


@dataclass(slots=True)
class ProjectModel:
    """The parsed project: symbol tables plus the attribute-write index."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    classes_by_name: dict[str, list[ClassInfo]] = field(default_factory=dict)
    methods_by_name: dict[str, list[FunctionInfo]] = field(default_factory=dict)
    attribute_writes: list[AttributeWrite] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    """Files that failed to parse (reported, and fail the run)."""

    @classmethod
    def build(
        cls,
        paths: Sequence[Path | str],
        *,
        jobs: int = 1,
        parsed: Sequence[tuple[str, str, ast.Module]] | None = None,
    ) -> "ProjectModel":
        """Parse ``paths`` (files or trees) into a model.

        Args:
            paths: Files or directories; directories are walked
                recursively (``fixtures`` and ``__pycache__`` skipped).
            jobs: Parse with this many forked workers when > 1.
            parsed: Pre-parsed ``(path, source, tree)`` triples; when
                given, ``paths``/``jobs`` are ignored (used by the CLI to
                share one parse between the linter and the checkers).

        Returns:
            The populated model.
        """
        model = cls()
        if parsed is None:
            files = list(iter_python_files(Path(p) for p in paths))
            parsed = parse_files(files, jobs=jobs, errors=model.errors)
        for path_str, source, tree in parsed:
            model.add_module(path_str, source, tree)
        model.finalize()
        return model

    def add_module(self, path: str, source: str, tree: ast.Module) -> None:
        """Add one parsed module to the model (call :meth:`finalize` after)."""
        name = module_name_for(Path(path))
        info = ModuleInfo(name=name, path=path, source=source, tree=tree)
        extractor = _ModuleExtractor(info, self.attribute_writes)
        extractor.visit(tree)
        self.modules[name] = info
        for function in extractor.info_all_functions:
            self.functions[function.qualname] = function
            self.methods_by_name.setdefault(function.name, []).append(function)
        for class_info in extractor.info_all_classes:
            self.classes[class_info.qualname] = class_info
            self.classes_by_name.setdefault(class_info.name, []).append(
                class_info
            )

    def finalize(self) -> None:
        """Post-parse pass: drop empty attr-type placeholders."""
        for class_info in self.classes.values():
            class_info.attr_types = {
                attr: type_name
                for attr, type_name in class_info.attr_types.items()
                if type_name
            }

    # -- symbol resolution ---------------------------------------------

    def resolve_class(self, name: str) -> ClassInfo | None:
        """A class by qualname or (unambiguous enough) bare name."""
        if name in self.classes:
            return self.classes[name]
        candidates = self.classes_by_name.get(name.rsplit(".", 1)[-1], [])
        return candidates[0] if candidates else None

    def resolve_name(self, module: ModuleInfo, name: str) -> str | None:
        """Resolve a bare name used in ``module`` to a known qualname."""
        head = name.split(".", 1)[0]
        if head in module.imports:
            target = module.imports[head]
            rest = name[len(head) + 1 :]
            dotted = f"{target}.{rest}" if rest else target
        else:
            dotted = f"{module.name}.{name}"
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Re-exported names: `from repro.index import ARTree` points at the
        # package, the definition lives in a submodule.
        tail = dotted.rsplit(".", 1)[-1]
        for candidate in self.classes_by_name.get(tail, []):
            return candidate.qualname
        candidates = self.methods_by_name.get(tail, [])
        for candidate in candidates:
            if candidate.cls is None:
                return candidate.qualname
        return None

    def class_of_method(self, function: FunctionInfo) -> ClassInfo | None:
        """The owning :class:`ClassInfo` of a method, if any."""
        if function.cls is None:
            return None
        return self.classes.get(function.cls)

    def mro_methods(self, class_info: ClassInfo, name: str) -> FunctionInfo | None:
        """Resolve ``name`` on ``class_info`` or its known base classes."""
        seen: set[str] = set()
        queue = [class_info]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base_name in current.base_names:
                base = self.resolve_class(base_name.rsplit(".", 1)[-1])
                if base is not None:
                    queue.append(base)
        return None


def parse_files(
    files: Sequence[Path],
    *,
    jobs: int = 1,
    errors: list[str] | None = None,
) -> list[tuple[str, str, ast.Module]]:
    """Parse ``files``, optionally with a forked worker pool.

    Args:
        files: The python files to parse.
        jobs: Fork this many workers when > 1 (falls back to serial when
            the platform lacks ``fork``).
        errors: Receives ``"path: error"`` strings for unparsable files.

    Returns:
        ``(path, source, tree)`` per successfully parsed file.
    """
    sink = errors if errors is not None else []
    results: list[tuple[str, str, ast.Module]] = []
    if jobs > 1:
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=jobs) as pool:
                for outcome in pool.map(
                    _parse_one, [str(path) for path in files]
                ):
                    if isinstance(outcome, str):
                        sink.append(outcome)
                    else:
                        results.append(outcome)
            return results
    for path in files:
        outcome = _parse_one(str(path))
        if isinstance(outcome, str):
            sink.append(outcome)
        else:
            results.append(outcome)
    return results


def _parse_one(path: str) -> tuple[str, str, ast.Module] | str:
    """Parse one file; returns an error string on failure."""
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        return f"{path}: {exc}"
    return path, source, tree
