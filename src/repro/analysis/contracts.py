"""Runtime contract mode: the paper's invariants asserted at engine seams.

The query engine's answers rest on a handful of numeric invariants that no
type checker can see:

* ``0 <= φ(o) <= 1`` — presence is an area ratio (Definition 1);
* ``Φ(p) <= |candidates|`` — a flow is a sum of presences over the
  relevant objects, each contributing at most 1 (Definition 2);
* ``area(UR) >= 0`` — quadrature never goes negative (Section 3);
* join upper bounds dominate refined flows — the count-based priorities
  that drive Algorithms 2/5 must never undercut an exact flow, or the
  best-first termination test returns wrong top-k sets (Section 4.2);
* cached == fresh — a memoized region/presence must agree with a from-
  scratch recomputation (the PR 1 cache-coherence invariant).

Checks are **off by default** and cost one truthiness test per call site.
Set ``REPRO_CONTRACTS=1`` (CI does, for the whole test suite) to enable
them; a violation raises :class:`ContractViolation`, an ``AssertionError``
subclass, naming the invariant and the offending values.

This module deliberately imports nothing from the rest of the package so
every layer (geometry included) can call into it without cycles.
"""

from __future__ import annotations

import math
import os

__all__ = [
    "ContractViolation",
    "check_area",
    "check_cached_value",
    "check_flow",
    "check_presence",
    "check_region_fingerprint",
    "check_storage_generation",
    "check_upper_bound",
    "contracts_enabled",
    "set_contracts",
]

_ENV_VAR = "REPRO_CONTRACTS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Absolute slack for quadrature sums: presences are exact ratios of small
#: integer counts and flows sum at most a few thousand of them, so any
#: drift beyond this is a real invariant break, not float noise.
_TOLERANCE = 1e-6

_override: bool | None = None


class ContractViolation(AssertionError):
    """A paper invariant did not hold at an engine seam."""


def contracts_enabled() -> bool:
    """Whether contract checks run (env flag, unless overridden)."""
    if _override is not None:
        return _override
    return os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY


def set_contracts(enabled: bool | None) -> None:
    """Force contracts on/off (tests); ``None`` returns to the env flag."""
    global _override
    _override = enabled


def _fail(message: str) -> None:
    raise ContractViolation(message)


def check_presence(value: float, *, where: str = "presence") -> float:
    """Definition 1: ``0 <= φ(o) <= 1``.  Returns ``value``."""
    if contracts_enabled() and not (
        -_TOLERANCE <= value <= 1.0 + _TOLERANCE
    ):
        _fail(f"{where} = {value!r} outside [0, 1] (Definition 1)")
    return value


def check_flow(value: float, candidate_count: int, *, poi_id: object = None) -> float:
    """Definition 2: ``0 <= Φ(p) <= #candidate objects``.  Returns ``value``."""
    if contracts_enabled():
        label = f"flow of POI {poi_id!r}" if poi_id is not None else "flow"
        if value < -_TOLERANCE:
            _fail(f"{label} = {value!r} is negative (Definition 2)")
        if value > candidate_count + _TOLERANCE:
            _fail(
                f"{label} = {value!r} exceeds the {candidate_count} candidate "
                "objects (Definition 2: each contributes at most presence 1)"
            )
    return value


def check_area(value: float, *, what: str = "region area") -> float:
    """Section 3: region/polygon areas are non-negative.  Returns ``value``."""
    if contracts_enabled() and value < -_TOLERANCE:
        _fail(f"{what} = {value!r} is negative")
    return value


def check_upper_bound(
    upper_bound: float, refined: float, *, poi_id: object = None
) -> float:
    """Section 4.2: a join priority must dominate the refined flow.

    Returns ``refined``.
    """
    if contracts_enabled() and refined > upper_bound + _TOLERANCE:
        label = f" of POI {poi_id!r}" if poi_id is not None else ""
        _fail(
            f"refined flow{label} = {refined!r} exceeds its count-based "
            f"upper bound {upper_bound!r}; the best-first join would "
            "terminate with a wrong top-k (Section 4.2)"
        )
    return refined


def check_cached_value(
    cached: float, fresh: float, *, what: str = "presence", key: object = None
) -> float:
    """PR 1 cache coherence: a memoized value equals its recomputation.

    Returns ``cached``.
    """
    if contracts_enabled() and not math.isclose(
        cached, fresh, rel_tol=1e-9, abs_tol=1e-9
    ):
        suffix = f" (key {key!r})" if key is not None else ""
        _fail(
            f"cached {what} {cached!r} != fresh recomputation {fresh!r}{suffix}"
        )
    return cached


def check_region_fingerprint(
    cached_mbr: tuple[float, float, float, float] | None,
    fresh_mbr: tuple[float, float, float, float] | None,
    *,
    key: object = None,
) -> None:
    """PR 1 cache coherence: a memoized region matches a fresh rebuild.

    Regions are compared by their bounding-box fingerprint (``None`` for a
    provably empty region) — cheap, and any construction drift (wrong
    device, wrong budget, stale epoch) moves the box.

    Region-cache keys quantize times to a microsecond (by design: closer
    times share one entry), so a fresh rebuild may differ by up to
    ``v_max * quantum`` meters; the comparison allows that much slack,
    which is still orders of magnitude below any real construction bug.
    """
    if not contracts_enabled():
        return
    if (cached_mbr is None) != (fresh_mbr is None):
        _fail(
            f"cached region {cached_mbr!r} vs fresh rebuild {fresh_mbr!r} "
            f"(one is empty; key {key!r})"
        )
    if cached_mbr is None or fresh_mbr is None:
        return
    if any(
        not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-5)
        for a, b in zip(cached_mbr, fresh_mbr)
    ):
        _fail(
            f"cached region MBR {cached_mbr!r} != fresh rebuild MBR "
            f"{fresh_mbr!r} (key {key!r})"
        )


def check_storage_generation(table_generation: int, backend_generation: int) -> None:
    """PR 8 storage lockstep: the table and its backend agree on history.

    Every live-table mutation is written through to the storage backend
    before the in-memory structures move, each side bumping its own
    monotonic generation counter.  After any persisted mutation (and
    after a completed recovery) the two counters must be equal — a drift
    means a write reached one side only, i.e. the durable store no longer
    describes the table a crash would need to rebuild.
    """
    if contracts_enabled() and table_generation != backend_generation:
        _fail(
            f"live table generation {table_generation} != storage backend "
            f"generation {backend_generation} (a mutation reached only one side)"
        )
