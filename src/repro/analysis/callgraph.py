"""Approximate call graph over a :class:`~repro.analysis.program.ProjectModel`.

Resolution is static and name/annotation driven — nothing is imported or
executed:

* bare-name calls resolve through the module's import map and local
  definitions;
* ``self.method()`` resolves through the enclosing class and its known
  bases (a breadth-first walk of the modelled hierarchy);
* ``obj.method()`` resolves when ``obj``'s type can be inferred from a
  parameter/variable annotation, a constructor assignment in the same
  function (``s = ShardState(...)``), a typed ``self.<attr>`` of the
  enclosing class, or an annotated property of a known class;
* as a last resort a method call falls back to *every* known class
  declaring that method name (recorded as low-confidence candidates).

The graph keeps forward and reverse edges plus every
:class:`CallSite` (with the inferred receiver type), which is what the
interprocedural checkers consume: reachability questions ("is this
mutator only callable from the ingest seam?") run over the reverse
edges, and type-filtered call-site scans ("``.append()`` on a
``LiveTrackingTable``") run over the sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from .program import (
    MODULE_SCOPE,
    annotation_name,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)

__all__ = ["CallGraph", "CallSite"]


@dataclass(slots=True)
class CallSite:
    """One call expression inside a function."""

    caller: str
    """Qualname of the enclosing function (or ``<module>`` scope)."""

    module: str
    name: str
    """The called bare name (``f`` for ``f(...)``, ``m`` for ``o.m(...)``)."""

    line: int
    col: int
    node: ast.Call
    receiver: str | None = None
    """Receiver expression source for method calls (``shard.ctx`` …)."""

    receiver_type: str | None = None
    """The receiver's inferred class *qualname*, when known."""

    candidates: tuple[str, ...] = ()
    """Possible callee qualnames (empty when unresolved)."""

    confident: bool = True
    """False when resolution fell back to the any-class-with-this-method
    heuristic."""


class _TypeEnv:
    """Local name -> class qualname for one function body."""

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    def get(self, name: str) -> str | None:
        return self.names.get(name)


class CallGraph:
    """Forward/reverse call edges plus the full call-site index."""

    def __init__(self, model: ProjectModel):
        self.model = model
        self.edges: dict[str, set[str]] = {}
        self.reverse: dict[str, set[str]] = {}
        self.sites: list[CallSite] = []
        self.sites_by_caller: dict[str, list[CallSite]] = {}
        self._envs: dict[str, _TypeEnv] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, model: ProjectModel) -> "CallGraph":
        """Resolve every call site in ``model`` into a graph."""
        graph = cls(model)
        for module in model.modules.values():
            graph._visit_module(module)
        return graph

    def _visit_module(self, module: ModuleInfo) -> None:
        # Walk each function body exactly once, attributing nested
        # functions to their own scope.
        for function in self.model.functions.values():
            if function.module != module.name:
                continue
            env = self._env_for(function, module)
            for node in self._own_nodes(function):
                if isinstance(node, ast.Call):
                    self._resolve_call(function, module, env, node)
        # Module-level calls get the module pseudo-scope.
        scope = f"{module.name}.{MODULE_SCOPE}"
        env = _TypeEnv()
        for node in self._module_level_nodes(module):
            if isinstance(node, ast.Call):
                self._resolve_module_call(scope, module, env, node)

    @staticmethod
    def _own_nodes(function: FunctionInfo) -> Iterable[ast.AST]:
        """The nodes of ``function`` excluding nested def/class bodies."""
        queue: list[ast.AST] = list(ast.iter_child_nodes(function.node))
        while queue:
            node = queue.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            queue.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _module_level_nodes(module: ModuleInfo) -> Iterable[ast.AST]:
        queue: list[ast.AST] = list(ast.iter_child_nodes(module.tree))
        while queue:
            node = queue.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            queue.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # Type inference
    # ------------------------------------------------------------------

    def _env_for(self, function: FunctionInfo, module: ModuleInfo) -> _TypeEnv:
        cached = self._envs.get(function.qualname)
        if cached is not None:
            return cached
        env = _TypeEnv()
        args = function.node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            if arg.annotation is not None:
                qualname = self._resolve_annotation(module, arg.annotation)
                if qualname is not None:
                    env.names[arg.arg] = qualname
        for node in self._own_nodes(function):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                qualname = self._resolve_annotation(module, node.annotation)
                if qualname is not None:
                    env.names[node.target.id] = qualname
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Call
                ):
                    # Constructor calls and annotated-return calls alike
                    # (`live = self._require_live()` picks up the helper's
                    # return annotation).
                    qualname = self._infer(node.value, env, function, module)
                    if qualname is not None:
                        env.names[target.id] = qualname
        self._envs[function.qualname] = env
        return env

    def _resolve_annotation(
        self, module: ModuleInfo, annotation: ast.expr
    ) -> str | None:
        name = annotation_name(annotation)
        if name is None:
            return None
        resolved = self.model.resolve_name(module, name)
        if resolved is not None and resolved in self.model.classes:
            return resolved
        by_name = self.model.classes_by_name.get(name)
        return by_name[0].qualname if by_name else None

    def _constructor_target(
        self, module: ModuleInfo, call: ast.Call
    ) -> str | None:
        """The class qualname a ``Cls(...)`` call constructs, if known."""
        func = call.func
        name: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            # `Cls.build(...)` classmethod constructors: when the
            # receiver is a known class, use the method's return
            # annotation (falling back to the class itself when the
            # method exists unannotated — classmethods conventionally
            # return cls).
            if isinstance(func.value, ast.Name):
                base_cls = self._class_for_name(module, func.value.id)
                if base_cls is not None:
                    method = self.model.mro_methods(base_cls, func.attr)
                    if method is not None:
                        if method.node.returns is not None:
                            owner = self.model.modules.get(
                                method.module, module
                            )
                            return self._resolve_annotation(
                                owner, method.node.returns
                            )
                        return base_cls.qualname
            name = func.attr
        if name is None:
            return None
        resolved = self.model.resolve_name(module, name)
        if resolved is not None and resolved in self.model.classes:
            return resolved
        by_name = self.model.classes_by_name.get(name)
        return by_name[0].qualname if by_name else None

    def _class_for_name(
        self, module: ModuleInfo, name: str
    ) -> ClassInfo | None:
        """Resolve a bare name to a modelled class, imports first."""
        resolved = self.model.resolve_name(module, name)
        if resolved is not None and resolved in self.model.classes:
            return self.model.classes[resolved]
        by_name = self.model.classes_by_name.get(name)
        return by_name[0] if by_name else None

    def infer_type(
        self,
        function: FunctionInfo,
        expr: ast.expr,
    ) -> str | None:
        """The class qualname ``expr`` evaluates to inside ``function``.

        Covers: ``self``, annotated/constructed locals, typed
        ``self.<attr>`` attributes, annotated properties and annotated
        method return types on known classes, one attribute hop deep.
        """
        module = self.model.modules.get(function.module)
        if module is None:
            return None
        env = self._env_for(function, module)
        return self._infer(expr, env, function, module)

    def _infer(
        self,
        expr: ast.expr,
        env: _TypeEnv,
        function: FunctionInfo | None,
        module: ModuleInfo,
    ) -> str | None:
        if isinstance(expr, ast.Name):
            if (
                expr.id == "self"
                and function is not None
                and function.cls is not None
            ):
                return function.cls
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            constructed = self._constructor_target(module, expr)
            if constructed is not None:
                return constructed
            # Annotated return type of a resolvable callee.
            callee = self._infer_callable(expr, env, function, module)
            if callee is not None:
                return self._return_type(callee, module)
            return None
        if isinstance(expr, ast.Attribute):
            base_type = self._infer(expr.value, env, function, module)
            if base_type is None:
                return None
            class_info = self.model.classes.get(base_type)
            while class_info is not None:
                attr_type = class_info.attr_types.get(expr.attr)
                if attr_type:
                    resolved = self.model.resolve_class(attr_type)
                    if resolved is not None:
                        return resolved.qualname
                prop = class_info.methods.get(expr.attr)
                if prop is not None and prop.is_property:
                    return self._return_type(prop, module)
                class_info = self._first_base(class_info)
            return None
        return None

    def _first_base(self, class_info: ClassInfo) -> ClassInfo | None:
        for base_name in class_info.base_names:
            base = self.model.resolve_class(base_name.rsplit(".", 1)[-1])
            if base is not None and base.qualname != class_info.qualname:
                return base
        return None

    def _infer_callable(
        self,
        call: ast.Call,
        env: _TypeEnv,
        function: FunctionInfo | None,
        module: ModuleInfo,
    ) -> FunctionInfo | None:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.model.resolve_name(module, func.id)
            if resolved is not None:
                return self.model.functions.get(resolved)
            return None
        if isinstance(func, ast.Attribute):
            base_type = self._infer(func.value, env, function, module)
            if base_type is not None:
                class_info = self.model.classes.get(base_type)
                if class_info is not None:
                    return self.model.mro_methods(class_info, func.attr)
        return None

    def _return_type(
        self, function: FunctionInfo, module: ModuleInfo
    ) -> str | None:
        returns = function.node.returns
        if returns is None:
            return None
        owner_module = self.model.modules.get(function.module, module)
        return self._resolve_annotation(owner_module, returns)

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def _resolve_call(
        self,
        function: FunctionInfo,
        module: ModuleInfo,
        env: _TypeEnv,
        node: ast.Call,
    ) -> None:
        site = self._make_site(function.qualname, module, env, function, node)
        if site is None:
            return
        self._add_site(site)

    def _resolve_module_call(
        self,
        scope: str,
        module: ModuleInfo,
        env: _TypeEnv,
        node: ast.Call,
    ) -> None:
        site = self._make_site(scope, module, env, None, node)
        if site is None:
            return
        self._add_site(site)

    def _make_site(
        self,
        caller: str,
        module: ModuleInfo,
        env: _TypeEnv,
        function: FunctionInfo | None,
        node: ast.Call,
    ) -> CallSite | None:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.model.resolve_name(module, func.id)
            candidates: tuple[str, ...] = ()
            if resolved is not None:
                if resolved in self.model.classes:
                    init = self.model.classes[resolved].methods.get("__init__")
                    candidates = (
                        (init.qualname,) if init is not None else (resolved,)
                    )
                else:
                    candidates = (resolved,)
            return CallSite(
                caller=caller,
                module=module.name,
                name=func.id,
                line=node.lineno,
                col=node.col_offset,
                node=node,
                candidates=candidates,
            )
        if isinstance(func, ast.Attribute):
            receiver_src: str | None
            try:
                receiver_src = ast.unparse(func.value)
            except Exception:  # pragma: no cover - defensive
                receiver_src = None
            receiver_type = self._infer(func.value, env, function, module)
            candidates = ()
            confident = True
            if receiver_type is not None:
                class_info = self.model.classes.get(receiver_type)
                if class_info is not None:
                    method = self.model.mro_methods(class_info, func.attr)
                    if method is not None:
                        candidates = (method.qualname,)
            if not candidates:
                # Fallback: any known class (or module function) with a
                # matching method name — low confidence.
                fallback = [
                    info.qualname
                    for info in self.model.methods_by_name.get(func.attr, [])
                ]
                if fallback:
                    candidates = tuple(fallback)
                    confident = False
            return CallSite(
                caller=caller,
                module=module.name,
                name=func.attr,
                line=node.lineno,
                col=node.col_offset,
                node=node,
                receiver=receiver_src,
                receiver_type=receiver_type,
                candidates=candidates,
                confident=confident,
            )
        return None

    def _add_site(self, site: CallSite) -> None:
        self.sites.append(site)
        self.sites_by_caller.setdefault(site.caller, []).append(site)
        if site.confident:
            for callee in site.candidates:
                self.edges.setdefault(site.caller, set()).add(callee)
                self.reverse.setdefault(callee, set()).add(site.caller)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def callers_of(self, qualname: str) -> frozenset[str]:
        """Direct (confident) callers of ``qualname``."""
        return frozenset(self.reverse.get(qualname, set()))

    def callees_of(self, qualname: str) -> frozenset[str]:
        """Direct (confident) callees of ``qualname``."""
        return frozenset(self.edges.get(qualname, set()))

    def transitive_callers(
        self, targets: Iterable[str], stop: frozenset[str] = frozenset()
    ) -> set[str]:
        """Everything that can reach ``targets`` along reverse edges.

        Args:
            targets: The callee qualnames to start from (not included in
                the result unless they call each other).
            stop: Qualnames whose own callers are not explored — the
                "seam": reaching a stop node ends that path.

        Returns:
            The set of caller qualnames (stop nodes included when they
            call a target directly; their callers are not).
        """
        seen: set[str] = set()
        queue = [target for target in targets]
        while queue:
            current = queue.pop()
            for caller in self.reverse.get(current, set()):
                if caller in seen:
                    continue
                seen.add(caller)
                if caller not in stop:
                    queue.append(caller)
        return seen

    def transitive_closure(
        self, roots: Iterable[str]
    ) -> set[str]:
        """Everything (confidently) reachable from ``roots`` via calls."""
        seen: set[str] = set()
        queue = list(roots)
        while queue:
            current = queue.pop()
            for callee in self.edges.get(current, set()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen
