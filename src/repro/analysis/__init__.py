"""Static analysis and runtime contracts for the query engine.

The evaluation stack caches uncertainty regions and presence values
(:mod:`repro.core.context`), so a single silently broken invariant — a
presence outside ``[0, 1]``, a negative region area, an unseeded RNG in a
workload generator, or a region built outside the caching layer — is
amplified into every downstream snapshot/interval top-k answer.  This
package is the correctness tooling that keeps those invariants machine
checked:

* :mod:`repro.analysis.linter` — an AST-based lint pass with repo-specific
  rules derived from the paper (``python -m repro.analysis src tests``);
* :mod:`repro.analysis.rules` — the individual per-file rules, each
  documenting the paper equation or architectural invariant it protects;
* :mod:`repro.analysis.program` / :mod:`repro.analysis.callgraph` — the
  v2 whole-program layer: a one-parse project model (symbol tables,
  attribute-write index) plus an approximate, annotation-driven call
  graph;
* :mod:`repro.analysis.checkers` — interprocedural checkers over that
  model (shard-safety, cache-coherence, determinism), run with
  ``python -m repro.analysis --check-all``;
* :mod:`repro.analysis.driver` — orchestration: shared parsing, the
  result cache, baselines and the text/json/sarif output formats;
* :mod:`repro.analysis.contracts` — lightweight runtime contract checks at
  the engine seams, enabled with ``REPRO_CONTRACTS=1``.
"""

from .callgraph import CallGraph, CallSite
from .checkers import ALL_CHECKERS, Checker, checkers_by_name
from .contracts import (
    ContractViolation,
    check_area,
    check_cached_value,
    check_flow,
    check_presence,
    check_region_fingerprint,
    check_upper_bound,
    contracts_enabled,
    set_contracts,
)
from .driver import AnalysisReport, analyze
from .linter import Diagnostic, LintReport, lint_paths, main
from .program import ProjectModel
from .rules import ALL_RULES, rules_by_name

__all__ = [
    "ALL_CHECKERS",
    "ALL_RULES",
    "AnalysisReport",
    "CallGraph",
    "CallSite",
    "Checker",
    "ContractViolation",
    "Diagnostic",
    "LintReport",
    "ProjectModel",
    "analyze",
    "check_area",
    "check_cached_value",
    "check_flow",
    "check_presence",
    "check_region_fingerprint",
    "check_upper_bound",
    "checkers_by_name",
    "contracts_enabled",
    "lint_paths",
    "main",
    "rules_by_name",
    "set_contracts",
]
