"""Static analysis and runtime contracts for the query engine.

The evaluation stack caches uncertainty regions and presence values
(:mod:`repro.core.context`), so a single silently broken invariant — a
presence outside ``[0, 1]``, a negative region area, an unseeded RNG in a
workload generator, or a region built outside the caching layer — is
amplified into every downstream snapshot/interval top-k answer.  This
package is the correctness tooling that keeps those invariants machine
checked:

* :mod:`repro.analysis.linter` — an AST-based lint pass with repo-specific
  rules derived from the paper (``python -m repro.analysis src tests``);
* :mod:`repro.analysis.rules` — the individual rules, each documenting the
  paper equation or architectural invariant it protects;
* :mod:`repro.analysis.contracts` — lightweight runtime contract checks at
  the engine seams, enabled with ``REPRO_CONTRACTS=1``.
"""

from .contracts import (
    ContractViolation,
    check_area,
    check_cached_value,
    check_flow,
    check_presence,
    check_region_fingerprint,
    check_upper_bound,
    contracts_enabled,
    set_contracts,
)
from .linter import Diagnostic, LintReport, lint_paths, main
from .rules import ALL_RULES, rules_by_name

__all__ = [
    "ALL_RULES",
    "ContractViolation",
    "Diagnostic",
    "LintReport",
    "check_area",
    "check_cached_value",
    "check_flow",
    "check_presence",
    "check_region_fingerprint",
    "check_upper_bound",
    "contracts_enabled",
    "lint_paths",
    "main",
    "rules_by_name",
    "set_contracts",
]
