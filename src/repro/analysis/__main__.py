"""``python -m repro.analysis`` — run the paper-invariant lint pass."""

import sys

from .linter import main

if __name__ == "__main__":
    sys.exit(main())
