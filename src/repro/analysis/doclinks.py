"""Check intra-repo markdown links.

Documentation rots fastest at its seams: a file is moved
(``docs/assets/``), a section is renamed, and a relative link in some
other document silently points at nothing.  This checker walks the
repo's markdown files, extracts every inline link and resolves the
relative ones against the linking file's directory; a target that does
not exist on disk is a finding.

External links (``http(s)://``, ``mailto:``), pure in-page anchors
(``#section``) and absolute paths are skipped — the checker guards the
repo's own cross-references, not the internet.  Anchor suffixes on
relative links (``api.md#flowengine``) are stripped before resolution;
anchor validity is not checked (heading slugs are host-specific).

Usage::

    python -m repro.analysis.doclinks            # repo root, all *.md
    python -m repro.analysis.doclinks docs README.md

Exit codes follow ``repro.analysis``: 0 clean, 1 broken links found,
2 usage errors.
"""

from __future__ import annotations

import argparse
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BrokenLink", "check_file", "collect_markdown", "main"]

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
#: The target group stops at whitespace or the closing paren, which also
#: drops optional ``"title"`` parts.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)[^)]*\)")

#: Fenced code block delimiters — links inside fences are examples, not
#: references, and are skipped.
_FENCE_RE = re.compile(r"^\s*(```|~~~)")

#: Inline code spans — ``Φ_[t_s, t_e](p)`` inside backticks would
#: otherwise parse as a link with target ``p``.  Double-backtick spans
#: (RST idiom surviving in generated docs) are matched before single.
_CODE_SPAN_RE = re.compile(r"``[^`]*``|`[^`]*`")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Directories never scanned for markdown sources.
_SKIP_DIRS = frozenset(
    {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}
)


@dataclass(frozen=True, slots=True)
class BrokenLink:
    """One unresolvable intra-repo link."""

    source: Path
    line: int
    target: str

    def __str__(self) -> str:
        return f"{self.source}:{self.line}: broken link -> {self.target}"


def _is_checkable(target: str) -> bool:
    """Whether ``target`` is a relative intra-repo path worth resolving."""
    if not target or target.startswith("#"):
        return False
    if target.startswith(_EXTERNAL_PREFIXES):
        return False
    if target.startswith("/"):  # host-absolute; outside our tree model
        return False
    if "://" in target:  # any other scheme
        return False
    return True


def check_file(path: Path) -> list[BrokenLink]:
    """All broken relative links in one markdown file.

    Args:
        path: The markdown file to scan.

    Returns:
        One :class:`BrokenLink` per unresolvable relative target, in
        file order.  Links inside fenced code blocks are ignored.
    """
    broken: list[BrokenLink] = []
    in_fence = False
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        line = _CODE_SPAN_RE.sub("", line)
        for match in _LINK_RE.finditer(line):
            target = match.group(1).split("#", 1)[0]
            if not _is_checkable(target):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(
                    BrokenLink(source=path, line=lineno, target=match.group(1))
                )
    return broken


def collect_markdown(roots: list[Path]) -> list[Path]:
    """All ``*.md`` files under ``roots`` (files are taken verbatim).

    Args:
        roots: Files or directories to scan.

    Returns:
        Sorted, de-duplicated markdown paths; directories in
        :data:`_SKIP_DIRS` are pruned.
    """
    found: set[Path] = set()
    for root in roots:
        if root.is_file():
            found.add(root)
            continue
        for path in root.rglob("*.md"):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            found.add(path)
    return sorted(found)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Check intra-repo markdown links resolve to real files."
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="markdown files or directories to scan (default: repo root)",
    )
    args = parser.parse_args(argv)
    roots = args.paths or [Path(__file__).resolve().parents[3]]
    missing = [root for root in roots if not root.exists()]
    if missing:
        for root in missing:
            print(f"error: no such path: {root}")
        return 2
    files = collect_markdown(roots)
    broken: list[BrokenLink] = []
    for path in files:
        broken.extend(check_file(path))
    for finding in broken:
        print(finding)
    print(
        f"checked {len(files)} markdown file(s): "
        f"{len(broken)} broken link(s)"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
