"""The repo-specific AST lint pass.

Generic linters cannot know that ``φ(o)`` is a probability, that uncertainty
regions must be built through :class:`~repro.core.context.EvaluationContext`
or that benchmark hot paths may not read wall clocks.  This module provides
the small framework — diagnostics, suppression comments, file walking and
the CLI — while the rules themselves live in :mod:`repro.analysis.rules`,
each documenting the paper invariant it protects.  The whole-program
checkers (:mod:`repro.analysis.checkers`) emit the same
:class:`Diagnostic` objects and share the suppression machinery; they are
orchestrated by :mod:`repro.analysis.driver`.

Suppressions
------------

A diagnostic is suppressed by a pragma comment naming its rule, either on
the flagged line or on the line directly above it::

    value = snapshot_region(ctx, ...)  # repro: allow(context-bypass): unit test of the low-level builder

    # repro: allow(float-equality): sentinel comparison, value is exact
    if marker == 1.0:

Several rules can be named in one pragma, comma separated — the
justification after the closing parenthesis then applies to each of
them — and one comment may carry several pragmas, each with its own
justification::

    # repro: allow(context-bypass, cache-coherence): rebuild path, generation bumped by caller
    # repro: allow(determinism): int-only sum  # repro: allow(wall-clock): cold path

A whole file opts out of one rule with a file-level pragma anywhere in the
file (used by unit tests that exist to exercise a low-level API)::

    # repro: allow-file(context-bypass): this file tests snapshot_region itself

Justifications are parsed and kept (``Suppressions.justification_for``)
so tools and reviewers can audit them; an empty justification is legal
but frowned upon.

Usage
-----

``python -m repro.analysis [paths ...]`` lints the given files/directories
(defaulting to ``src`` and ``tests``) and exits non-zero when any
diagnostic survives suppression.  ``--check-all`` additionally runs the
whole-program checkers; see ``--help`` for baselines, output formats,
caching, ``--jobs`` and ``--profile``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .program import iter_python_files, parse_files

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle:
    # rules import the Rule base class from this module)
    from .rules import Rule

__all__ = [
    "Diagnostic",
    "LintReport",
    "Suppressions",
    "lint_file",
    "lint_paths",
    "main",
    "parse_suppressions",
]

#: ``# repro: allow(rule-a, rule-b)`` / ``# repro: allow-file(rule)``;
#: the justification is the ``: free text`` after the closing parenthesis,
#: running until the next pragma on the same line (if any).
_PRAGMA = re.compile(r"#\s*repro:\s*allow(?P<scope>-file)?\(\s*(?P<rules>[^)]*)\)")


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding: a rule violation at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: [rule] message`` — the text output line."""
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"


@dataclass(slots=True)
class LintReport:
    """The outcome of linting a set of files."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    errors: list[str] = field(default_factory=list)
    """Files that could not be parsed (reported, and fail the run)."""

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.errors


#: File-wide suppressions are recorded under this pseudo line number.
FILE_WIDE_LINE = 0


@dataclass(frozen=True, slots=True)
class Suppressions:
    """Parsed pragma comments of one file."""

    by_line: dict[int, frozenset[str]]
    file_wide: frozenset[str]
    justifications: dict[tuple[int, str], str]
    """(line, rule) -> justification text ('' when none was written);
    file-wide pragmas use line :data:`FILE_WIDE_LINE`."""

    def covers(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.rule in self.file_wide:
            return True
        for line in (diagnostic.line, diagnostic.line - 1):
            if diagnostic.rule in self.by_line.get(line, frozenset()):
                return True
        return False

    def justification_for(self, diagnostic: Diagnostic) -> str | None:
        """The pragma justification covering ``diagnostic``, if covered."""
        for line in (diagnostic.line, diagnostic.line - 1):
            if diagnostic.rule in self.by_line.get(line, frozenset()):
                return self.justifications.get((line, diagnostic.rule), "")
        if diagnostic.rule in self.file_wide:
            return self.justifications.get(
                (FILE_WIDE_LINE, diagnostic.rule), ""
            )
        return None


def parse_suppressions(source: str) -> Suppressions:
    """Parse every ``# repro: allow...`` pragma in ``source``.

    Handles several comma-separated rules per pragma (the trailing
    justification applies to each) and several pragmas per line (each
    keeps its own justification, running up to the next pragma).
    """
    by_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    justifications: dict[tuple[int, str], str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        matches = list(_PRAGMA.finditer(text))
        for index, match in enumerate(matches):
            names = [
                name.strip()
                for name in match.group("rules").split(",")
                if name.strip()
            ]
            if not names:
                continue
            end = (
                matches[index + 1].start()
                if index + 1 < len(matches)
                else len(text)
            )
            trailer = text[match.end() : end].strip()
            justification = (
                trailer[1:].strip() if trailer.startswith(":") else ""
            )
            if match.group("scope"):
                file_wide.update(names)
                for name in names:
                    justifications.setdefault(
                        (FILE_WIDE_LINE, name), justification
                    )
            else:
                by_line[lineno] = by_line.get(lineno, frozenset()) | frozenset(
                    names
                )
                for name in names:
                    justifications[(lineno, name)] = justification
    return Suppressions(
        by_line=by_line,
        file_wide=frozenset(file_wide),
        justifications=justifications,
    )


# Backward-compatible aliases (pre-v2 private names).
_Suppressions = Suppressions
_parse_suppressions = parse_suppressions


def lint_file(
    path: Path,
    rules: Sequence["Rule"],
    report: LintReport,
    *,
    preparsed: tuple[str, ast.Module] | None = None,
) -> None:
    """Lint one file into ``report``.

    Args:
        path: The file to lint.
        rules: The rules to run.
        report: Receives diagnostics/suppression counts/errors.
        preparsed: Optional ``(source, tree)`` from a parallel parse
            stage, to avoid re-reading and re-parsing.
    """
    from repro.obs import span

    if preparsed is not None:
        source, tree = preparsed
    else:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append(f"{path}: {exc}")
            return
    report.files_checked += 1
    suppressions = parse_suppressions(source)
    for rule in rules:
        if not rule.applies_to(path):
            continue
        with span(f"analysis.rule.{rule.name}"):
            found = rule.check(tree, str(path))
        for diagnostic in found:
            if suppressions.covers(diagnostic):
                report.suppressed += 1
            else:
                report.diagnostics.append(diagnostic)


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    # Shared walker: skips __pycache__ and the seeded-violation fixture
    # trees under tests/analysis/fixtures (they exist to be flagged).
    yield from iter_python_files(paths)


def lint_paths(
    paths: Sequence[Path | str],
    rules: Sequence["Rule"] | None = None,
    *,
    jobs: int = 1,
) -> LintReport:
    """Lint files and directories (recursively) with ``rules``.

    ``rules=None`` uses :data:`repro.analysis.rules.ALL_RULES`.  With
    ``jobs > 1`` files are parsed by a forked worker pool first (the
    AST walk itself stays in-process — parsing dominates).
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    report = LintReport()
    files = list(_iter_python_files(Path(p) for p in paths))
    if jobs > 1:
        parsed = parse_files(files, jobs=jobs, errors=report.errors)
        for path_str, source, tree in parsed:
            lint_file(
                Path(path_str), rules, report, preparsed=(source, tree)
            )
    else:
        for path in files:
            lint_file(path, rules, report)
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .rules import ALL_RULES, rules_by_name

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Paper-invariant static checks for the repro codebase: "
            "per-file rules, plus whole-program shard-safety / "
            "cache-coherence / determinism checkers (--check-all)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named per-file rule (repeatable)",
    )
    parser.add_argument(
        "--checker",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "run only the named whole-program checker (repeatable; "
            "implies the checker pass)"
        ),
    )
    parser.add_argument(
        "--check-all",
        action="store_true",
        help="run the per-file rules AND the whole-program checkers",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available per-file rules and exit",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list the available whole-program checkers and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format for findings (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="subtract grandfathered findings recorded in this file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the surviving findings to PATH as a baseline and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse files with N forked workers (default: 1)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-rule / per-checker wall time via repro.obs spans",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the analysis result cache",
    )
    parser.add_argument(
        "--cache-path",
        metavar="PATH",
        default=None,
        help="analysis cache location (default: .repro-analysis-cache.json)",
    )
    parser.add_argument(
        "--report-tests",
        action="store_true",
        help=(
            "report checker findings in tests/benchmarks/examples too "
            "(skipped by default — tests exercise seams on purpose)"
        ),
    )
    args = parser.parse_args(argv)

    registry = rules_by_name()
    from .checkers import checkers_by_name

    checker_registry = checkers_by_name()

    if args.list_rules or args.list_checkers:
        if args.list_rules:
            for name in sorted(registry):
                rule = registry[name]
                print(f"{name:20s} {rule.description}")
                if rule.paper_ref:
                    print(f"{'':20s} protects: {rule.paper_ref}")
        if args.list_checkers:
            for name in sorted(checker_registry):
                checker = checker_registry[name]
                print(f"{name:20s} {checker.description}")
                if checker.paper_ref:
                    print(f"{'':20s} protects: {checker.paper_ref}")
        return 0

    if args.rule:
        unknown = [name for name in args.rule if name not in registry]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            print(f"available: {', '.join(sorted(registry))}", file=sys.stderr)
            return 2
        rules: Sequence["Rule"] = [registry[name] for name in args.rule]
    else:
        rules = ALL_RULES

    checkers = None
    if args.checker:
        unknown = [
            name for name in args.checker if name not in checker_registry
        ]
        if unknown:
            print(f"unknown checker(s): {', '.join(unknown)}", file=sys.stderr)
            print(
                f"available: {', '.join(sorted(checker_registry))}",
                file=sys.stderr,
            )
            return 2
        checkers = [checker_registry[name] for name in args.checker]

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    from .driver import run_cli

    return run_cli(args, rules=rules, checkers=checkers)
