"""The repo-specific AST lint pass.

Generic linters cannot know that ``φ(o)`` is a probability, that uncertainty
regions must be built through :class:`~repro.core.context.EvaluationContext`
or that benchmark hot paths may not read wall clocks.  This module provides
the small framework — diagnostics, suppression comments, file walking and
the CLI — while the rules themselves live in :mod:`repro.analysis.rules`,
each documenting the paper invariant it protects.

Suppressions
------------

A diagnostic is suppressed by a pragma comment naming its rule, either on
the flagged line or on the line directly above it::

    value = snapshot_region(ctx, ...)  # repro: allow(context-bypass): unit test of the low-level builder

    # repro: allow(float-equality): sentinel comparison, value is exact
    if marker == 1.0:

A whole file opts out of one rule with a file-level pragma anywhere in the
file (used by unit tests that exist to exercise a low-level API)::

    # repro: allow-file(context-bypass): this file tests snapshot_region itself

Several rules can be named at once, comma separated.  Pragmas should carry
a justification after a colon; the linter does not parse it, reviewers do.

Usage
-----

``python -m repro.analysis [paths ...]`` lints the given files/directories
(defaulting to ``src`` and ``tests``) and exits non-zero when any
diagnostic survives suppression.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle:
    # rules import the Rule base class from this module)
    from .rules import Rule

__all__ = ["Diagnostic", "LintReport", "lint_file", "lint_paths", "main"]

#: ``# repro: allow(rule-a, rule-b)`` / ``# repro: allow-file(rule)``;
#: anything after a closing parenthesis (the justification) is free text.
_PRAGMA = re.compile(r"#\s*repro:\s*allow(?P<scope>-file)?\(\s*(?P<rules>[^)]*)\)")


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding: a rule violation at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"


@dataclass(slots=True)
class LintReport:
    """The outcome of linting a set of files."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    errors: list[str] = field(default_factory=list)
    """Files that could not be parsed (reported, and fail the run)."""

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.errors


@dataclass(frozen=True, slots=True)
class _Suppressions:
    """Parsed pragma comments of one file."""

    by_line: dict[int, frozenset[str]]
    file_wide: frozenset[str]

    def covers(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.rule in self.file_wide:
            return True
        for line in (diagnostic.line, diagnostic.line - 1):
            if diagnostic.rule in self.by_line.get(line, frozenset()):
                return True
        return False


def _parse_suppressions(source: str) -> _Suppressions:
    by_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        if match.group("scope"):
            file_wide.update(names)
        else:
            by_line[lineno] = by_line.get(lineno, frozenset()) | names
    return _Suppressions(by_line=by_line, file_wide=frozenset(file_wide))


def lint_file(
    path: Path, rules: Sequence["Rule"], report: LintReport
) -> None:
    """Lint one file into ``report``."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        report.errors.append(f"{path}: {exc}")
        return
    report.files_checked += 1
    suppressions = _parse_suppressions(source)
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for diagnostic in rule.check(tree, str(path)):
            if suppressions.covers(diagnostic):
                report.suppressed += 1
            else:
                report.diagnostics.append(diagnostic)


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            yield path


def lint_paths(
    paths: Sequence[Path | str], rules: Sequence["Rule"] | None = None
) -> LintReport:
    """Lint files and directories (recursively) with ``rules``.

    ``rules=None`` uses :data:`repro.analysis.rules.ALL_RULES`.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    report = LintReport()
    for path in _iter_python_files(Path(p) for p in paths):
        lint_file(path, rules, report)
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .rules import ALL_RULES, rules_by_name

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Paper-invariant static checks for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    args = parser.parse_args(argv)

    registry = rules_by_name()
    if args.list_rules:
        for name in sorted(registry):
            rule = registry[name]
            print(f"{name:20s} {rule.description}")
            if rule.paper_ref:
                print(f"{'':20s} protects: {rule.paper_ref}")
        return 0

    if args.rule:
        unknown = [name for name in args.rule if name not in registry]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            print(f"available: {', '.join(sorted(registry))}", file=sys.stderr)
            return 2
        rules: Sequence["Rule"] = [registry[name] for name in args.rule]
    else:
        rules = ALL_RULES

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    report = lint_paths(args.paths, rules)
    for diagnostic in report.diagnostics:
        print(diagnostic.format())
    for error in report.errors:
        print(f"error: {error}", file=sys.stderr)
    summary = (
        f"{len(report.diagnostics)} finding(s), {report.suppressed} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    print(summary, file=sys.stderr)
    return 0 if report.ok else 1
