"""Orchestration for the v2 analysis: rules + checkers, cache, formats.

The driver owns everything above the individual rule/checker level:

* walking the target paths once and parsing each file at most once per
  run (``--jobs N`` forks a parser pool),
* running the per-file rules and the whole-program checkers over the
  same parse results, with pragma suppression applied uniformly,
* the **result cache** (``.repro-analysis-cache.json``): per-file lint
  results keyed by content digest + rule set, whole-program checker
  results keyed by the digest of every analyzed file — a warm run does
  nothing but ``stat()`` calls and a JSON load, well under the 2 s
  budget,
* the **baseline** workflow (``--baseline`` / ``--write-baseline``):
  grandfathered findings are recorded as ``(path, rule, message)``
  entries with counts (line numbers drift too much to key on), and only
  *new* findings fail the run,
* the output formats: ``text`` (one ``path:line:col: [rule] message``
  per finding), ``json`` (stable machine-readable document) and
  ``sarif`` (SARIF 2.1.0, for code-scanning upload).
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from .callgraph import CallGraph
from .checkers import ALL_CHECKERS, Checker
from .linter import Diagnostic, lint_file, LintReport, parse_suppressions
from .program import ProjectModel, iter_python_files, parse_files

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .rules import Rule

__all__ = [
    "AnalysisReport",
    "AnalysisCache",
    "DEFAULT_CACHE_PATH",
    "analyze",
    "load_baseline",
    "render_json",
    "render_sarif",
    "run_cli",
    "subtract_baseline",
    "write_baseline_file",
]

DEFAULT_CACHE_PATH = Path(".repro-analysis-cache.json")
_CACHE_VERSION = 1
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


@dataclass(slots=True)
class AnalysisReport:
    """Combined outcome of the rule and checker passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    errors: list[str] = field(default_factory=list)
    baselined: int = 0
    """Findings swallowed by the baseline file."""

    @property
    def ok(self) -> bool:
        """True when the run produced no findings and no errors."""
        return not self.diagnostics and not self.errors


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------


def _digest_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:20]


class AnalysisCache:
    """mtime+size → content-digest → result cache, one JSON file.

    A file's entry is trusted when its ``(mtime_ns, size)`` still match —
    no re-hash, no re-read.  When they differ the content is re-hashed;
    an unchanged digest (e.g. ``touch``) still reuses the results.
    Corrupt or version-skewed cache files are silently discarded.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._files: dict[str, dict] = {}
        self._programs: dict[str, dict] = {}
        self._dirty = False
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") == _CACHE_VERSION:
                self._files = dict(payload.get("files", {}))
                self._programs = dict(payload.get("programs", {}))
        except (OSError, ValueError):
            pass

    # -- digests -------------------------------------------------------

    def digest_for(self, path: Path) -> str | None:
        """The content digest of ``path``, cached by stat signature."""
        try:
            stat = path.stat()
        except OSError:
            return None
        key = str(path)
        entry = self._files.get(key)
        if (
            entry is not None
            and entry.get("mtime_ns") == stat.st_mtime_ns
            and entry.get("size") == stat.st_size
        ):
            digest = entry.get("digest")
            if isinstance(digest, str):
                return digest
        try:
            digest = _digest_bytes(path.read_bytes())
        except OSError:
            return None
        if entry is None or entry.get("digest") != digest:
            entry = {"mtime_ns": stat.st_mtime_ns, "size": stat.st_size,
                     "digest": digest, "lint": {}}
        else:
            entry = dict(entry)
            entry["mtime_ns"] = stat.st_mtime_ns
            entry["size"] = stat.st_size
        self._files[key] = entry
        self._dirty = True
        return digest

    # -- per-file lint results ----------------------------------------

    def lint_result(
        self, path: Path, digest: str, rules_key: str
    ) -> tuple[list[Diagnostic], int] | None:
        entry = self._files.get(str(path))
        if entry is None or entry.get("digest") != digest:
            return None
        cached = entry.get("lint", {}).get(rules_key)
        if cached is None:
            return None
        diagnostics = [_diag_from_list(item) for item in cached["diagnostics"]]
        return diagnostics, int(cached["suppressed"])

    def store_lint_result(
        self,
        path: Path,
        digest: str,
        rules_key: str,
        diagnostics: Sequence[Diagnostic],
        suppressed: int,
    ) -> None:
        entry = self._files.setdefault(str(path), {"digest": digest, "lint": {}})
        entry.setdefault("lint", {})[rules_key] = {
            "diagnostics": [_diag_to_list(d) for d in diagnostics],
            "suppressed": suppressed,
        }
        self._dirty = True

    # -- whole-program checker results --------------------------------

    @staticmethod
    def program_key(
        digests: Mapping[str, str],
        checker_names: Sequence[str],
        report_all: bool,
    ) -> str:
        payload = json.dumps(
            {
                "files": sorted(digests.items()),
                "checkers": sorted(checker_names),
                "report_all": report_all,
            },
            sort_keys=True,
        )
        return _digest_bytes(payload.encode("utf-8"))

    def program_result(self, key: str) -> tuple[list[Diagnostic], int] | None:
        cached = self._programs.get(key)
        if cached is None:
            return None
        diagnostics = [_diag_from_list(item) for item in cached["diagnostics"]]
        return diagnostics, int(cached["suppressed"])

    def store_program_result(
        self, key: str, diagnostics: Sequence[Diagnostic], suppressed: int
    ) -> None:
        # Keep only the latest program result: stale keys accumulate
        # one per edit otherwise.
        self._programs = {
            key: {
                "diagnostics": [_diag_to_list(d) for d in diagnostics],
                "suppressed": suppressed,
            }
        }
        self._dirty = True

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "files": self._files,
            "programs": self._programs,
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:  # pragma: no cover - read-only checkouts
            pass


def _diag_to_list(diagnostic: Diagnostic) -> list:
    return [
        diagnostic.path,
        diagnostic.line,
        diagnostic.column,
        diagnostic.rule,
        diagnostic.message,
    ]


def _diag_from_list(item: Sequence) -> Diagnostic:
    path, line, column, rule, message = item
    return Diagnostic(
        path=str(path),
        line=int(line),
        column=int(column),
        rule=str(rule),
        message=str(message),
    )


# ----------------------------------------------------------------------
# The analysis itself
# ----------------------------------------------------------------------


def analyze(
    paths: Sequence[Path | str],
    *,
    rules: Sequence["Rule"] = (),
    checkers: Sequence[Checker] = (),
    jobs: int = 1,
    report_all: bool = False,
    cache: AnalysisCache | None = None,
) -> AnalysisReport:
    """Run ``rules`` and ``checkers`` over ``paths`` with caching.

    Args:
        paths: Files or directories (directories walked recursively,
            ``fixtures`` / ``__pycache__`` skipped).
        rules: Per-file rules to run (may be empty).
        checkers: Whole-program checkers to run (may be empty).
        jobs: Fork this many parser workers when > 1.
        report_all: Report checker findings in tests/benchmarks too.
        cache: Optional result cache (caller saves it).

    Returns:
        The combined report, diagnostics sorted by location.
    """
    from repro.obs import span

    report = AnalysisReport()
    files = list(iter_python_files(Path(p) for p in paths))

    digests: dict[str, str] = {}
    for path in files:
        if cache is not None:
            digest = cache.digest_for(path)
        else:
            try:
                digest = _digest_bytes(path.read_bytes())
            except OSError as exc:
                report.errors.append(f"{path}: {exc}")
                continue
        if digest is None:
            report.errors.append(f"{path}: unreadable")
            continue
        digests[str(path)] = digest

    rules_key = ",".join(sorted(rule.name for rule in rules))
    checker_names = [checker.name for checker in checkers]

    # Decide what actually needs parsing.
    lint_misses: list[Path] = []
    lint_hits: dict[str, tuple[list[Diagnostic], int]] = {}
    if rules:
        for path_str, digest in digests.items():
            cached = (
                cache.lint_result(Path(path_str), digest, rules_key)
                if cache is not None
                else None
            )
            if cached is not None:
                lint_hits[path_str] = cached
            else:
                lint_misses.append(Path(path_str))

    program_key = AnalysisCache.program_key(digests, checker_names, report_all)
    program_cached = (
        cache.program_result(program_key)
        if cache is not None and checkers
        else None
    )

    need_parse: list[Path] = list(lint_misses)
    if checkers and program_cached is None:
        seen = {str(p) for p in need_parse}
        need_parse.extend(
            Path(path_str)
            for path_str in digests
            if path_str not in seen
        )

    with span("analysis.parse"):
        parse_errors: list[str] = []
        parsed = parse_files(sorted(need_parse), jobs=jobs, errors=parse_errors)
    report.errors.extend(parse_errors)
    parsed_by_path: dict[str, tuple[str, ast.Module]] = {
        path_str: (source, tree) for path_str, source, tree in parsed
    }

    # ---- per-file rules ----------------------------------------------
    if rules:
        for path_str in sorted(digests):
            hit = lint_hits.get(path_str)
            if hit is not None:
                diagnostics, suppressed = hit
                report.diagnostics.extend(diagnostics)
                report.suppressed += suppressed
                report.files_checked += 1
                continue
            preparsed = parsed_by_path.get(path_str)
            if preparsed is None:
                continue  # parse error, already recorded
            path = Path(path_str)
            file_report = LintReport()
            lint_file(path, rules, file_report, preparsed=preparsed)
            report.diagnostics.extend(file_report.diagnostics)
            report.suppressed += file_report.suppressed
            report.files_checked += file_report.files_checked
            if cache is not None:
                cache.store_lint_result(
                    path,
                    digests[path_str],
                    rules_key,
                    file_report.diagnostics,
                    file_report.suppressed,
                )
    else:
        report.files_checked = len(digests)

    # ---- whole-program checkers --------------------------------------
    if checkers:
        if program_cached is not None:
            diagnostics, suppressed = program_cached
            report.diagnostics.extend(diagnostics)
            report.suppressed += suppressed
        else:
            analyzable = [
                (path_str, source, tree)
                for path_str, (source, tree) in sorted(parsed_by_path.items())
            ]
            with span("analysis.model"):
                model = ProjectModel.build(
                    [item[0] for item in analyzable], parsed=analyzable
                )
            with span("analysis.callgraph"):
                graph = CallGraph.build(model)
            kept: list[Diagnostic] = []
            suppressed = 0
            suppressions_by_path = {
                path_str: parse_suppressions(source)
                for path_str, (source, _tree) in parsed_by_path.items()
            }
            for checker in checkers:
                with span(f"analysis.checker.{checker.name}"):
                    found = checker.check(model, graph, report_all=report_all)
                for diagnostic in found:
                    suppressions = suppressions_by_path.get(diagnostic.path)
                    if suppressions is not None and suppressions.covers(
                        diagnostic
                    ):
                        suppressed += 1
                    else:
                        kept.append(diagnostic)
            report.diagnostics.extend(kept)
            report.suppressed += suppressed
            if cache is not None and not report.errors:
                cache.store_program_result(program_key, kept, suppressed)

    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
    return report


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> dict[tuple[str, str, str], int]:
    """Baseline entries as ``(path, rule, message) -> count``."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    counts: dict[tuple[str, str, str], int] = {}
    for item in payload.get("findings", []):
        key = (str(item["path"]), str(item["rule"]), str(item["message"]))
        counts[key] = counts.get(key, 0) + int(item.get("count", 1))
    return counts


def subtract_baseline(
    diagnostics: Sequence[Diagnostic],
    baseline: Mapping[tuple[str, str, str], int],
) -> tuple[list[Diagnostic], int]:
    """Drop diagnostics covered by ``baseline``; returns (kept, dropped)."""
    remaining = dict(baseline)
    kept: list[Diagnostic] = []
    dropped = 0
    for diagnostic in diagnostics:
        key = (diagnostic.path, diagnostic.rule, diagnostic.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            dropped += 1
        else:
            kept.append(diagnostic)
    return kept, dropped


def write_baseline_file(
    path: Path, diagnostics: Sequence[Diagnostic]
) -> None:
    """Record ``diagnostics`` as the grandfathered baseline at ``path``."""
    counts: dict[tuple[str, str, str], int] = {}
    for diagnostic in diagnostics:
        key = (diagnostic.path, diagnostic.rule, diagnostic.message)
        counts[key] = counts.get(key, 0) + 1
    findings = [
        {"path": key[0], "rule": key[1], "message": key[2], "count": count}
        for key, count in sorted(counts.items())
    ]
    payload = {"version": 1, "findings": findings}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------


def render_json(report: AnalysisReport) -> str:
    """A stable machine-readable report document."""
    payload = {
        "version": 1,
        "findings": [
            {
                "path": d.path,
                "line": d.line,
                "column": d.column,
                "rule": d.rule,
                "message": d.message,
            }
            for d in report.diagnostics
        ],
        "errors": list(report.errors),
        "summary": {
            "findings": len(report.diagnostics),
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "files_checked": report.files_checked,
            "ok": report.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    report: AnalysisReport,
    rules: Sequence["Rule"] = (),
    checkers: Sequence[Checker] = (),
) -> str:
    """A SARIF 2.1.0 document (GitHub code-scanning compatible)."""
    rule_meta = []
    seen: set[str] = set()
    for obj in [*rules, *checkers]:
        if obj.name in seen:
            continue
        seen.add(obj.name)
        meta = {
            "id": obj.name,
            "shortDescription": {"text": obj.description},
        }
        if obj.paper_ref:
            meta["help"] = {"text": f"Protects: {obj.paper_ref}"}
        rule_meta.append(meta)
    # Findings may reference rules not passed in (cached results).
    for diagnostic in report.diagnostics:
        if diagnostic.rule not in seen:
            seen.add(diagnostic.rule)
            rule_meta.append({"id": diagnostic.rule})
    results = [
        {
            "ruleId": d.rule,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.path},
                        "region": {
                            "startLine": d.line,
                            "startColumn": d.column,
                        },
                    }
                }
            ],
        }
        for d in report.diagnostics
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://github.com/"  # repo-relative docs
                        ),
                        "rules": rule_meta,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.errors,
                        "toolExecutionNotifications": [
                            {"level": "error", "message": {"text": error}}
                            for error in report.errors
                        ],
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# CLI glue
# ----------------------------------------------------------------------


def run_cli(
    args: argparse.Namespace,
    *,
    rules: Sequence["Rule"],
    checkers: Sequence[Checker] | None,
) -> int:
    """Execute the parsed ``python -m repro.analysis`` invocation."""
    import repro.obs as obs

    profiling = bool(args.profile)
    if profiling:
        obs.reset()
        obs.enable()
    try:
        run_checkers = bool(args.check_all or checkers is not None)
        active_checkers: Sequence[Checker] = (
            checkers
            if checkers is not None
            else (list(ALL_CHECKERS) if run_checkers else [])
        )
        cache = (
            None
            if args.no_cache
            else AnalysisCache(Path(args.cache_path or DEFAULT_CACHE_PATH))
        )
        report = analyze(
            args.paths,
            rules=rules,
            checkers=active_checkers,
            jobs=max(1, args.jobs),
            report_all=bool(args.report_tests),
            cache=cache,
        )
        if cache is not None:
            cache.save()

        if args.baseline:
            baseline_path = Path(args.baseline)
            if baseline_path.exists():
                try:
                    baseline = load_baseline(baseline_path)
                except (OSError, ValueError, KeyError) as exc:
                    print(
                        f"invalid baseline {baseline_path}: {exc}",
                        file=sys.stderr,
                    )
                    return 2
                report.diagnostics, report.baselined = subtract_baseline(
                    report.diagnostics, baseline
                )

        if args.write_baseline:
            write_baseline_file(Path(args.write_baseline), report.diagnostics)
            print(
                f"wrote {len(report.diagnostics)} finding(s) to "
                f"{args.write_baseline}",
                file=sys.stderr,
            )
            return 0

        if args.format == "json":
            print(render_json(report))
        elif args.format == "sarif":
            print(render_sarif(report, rules=rules, checkers=active_checkers))
        else:
            for diagnostic in report.diagnostics:
                print(diagnostic.format())
            for error in report.errors:
                print(f"error: {error}", file=sys.stderr)
            summary = (
                f"{len(report.diagnostics)} finding(s), "
                f"{report.suppressed} suppressed, "
                f"{report.baselined} baselined, "
                f"{report.files_checked} file(s) checked"
            )
            print(summary, file=sys.stderr)
        if profiling:
            print(obs.format_table(), file=sys.stderr)
        return 0 if report.ok else 1
    finally:
        if profiling:
            obs.disable()
