"""Rule: uncertainty regions are built through the EvaluationContext.

The context's region/presence caches (PR 1) are only coherent if every
region derivation goes through :meth:`EvaluationContext.snapshot_region` /
:meth:`EvaluationContext.interval_uncertainty` — a direct call to the
low-level builders skips the memo layer, the stats counters and the
params-epoch stamping, so cached and fresh answers can silently diverge.
This rule flags imports and bare calls of the low-level builders outside
the modules that implement the caching layer itself.

``__init__.py`` re-exports are exempt (the names stay public for low-level
use, e.g. ablation studies — which then carry an explicit suppression).
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..linter import Diagnostic
from .base import Rule

__all__ = ["ContextBypassRule"]

#: The low-level builder functions owned by the caching layer.
_GUARDED = frozenset({"snapshot_region", "interval_uncertainty"})

#: Path fragments of the modules allowed to touch the builders directly:
#: the context itself and the uncertainty package implementing them.
_ALLOWED_FRAGMENTS = (
    ("core", "uncertainty"),
    ("core", "context.py"),
    ("repro", "analysis"),
)


def _is_allowed(path: Path) -> bool:
    parts = path.parts
    for fragment in _ALLOWED_FRAGMENTS:
        for i in range(len(parts) - len(fragment) + 1):
            if parts[i : i + len(fragment)] == fragment:
                return True
    return False


class ContextBypassRule(Rule):
    name = "context-bypass"
    description = (
        "no direct snapshot_region()/interval_uncertainty() outside the "
        "EvaluationContext caching layer"
    )
    paper_ref = (
        "PR 1 cache coherence: memoized UR(o, t) / UR(o, [ts, te]) must be "
        "the only derivation path (Sections 3.1-3.2)"
    )

    def applies_to(self, path: Path) -> bool:
        return not _is_allowed(path)

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        is_reexport_module = Path(path).name == "__init__.py"
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and not is_reexport_module:
                for alias in node.names:
                    if alias.name in _GUARDED:
                        diagnostics.append(
                            self.diagnostic(
                                path,
                                node,
                                f"import of low-level {alias.name}(); derive "
                                f"regions through EvaluationContext.{alias.name} "
                                "so the memo layer stays coherent",
                            )
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if "core.uncertainty" in alias.name:
                        diagnostics.append(
                            self.diagnostic(
                                path,
                                node,
                                f"import of {alias.name}; derive regions "
                                "through EvaluationContext instead of the "
                                "uncertainty modules",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _GUARDED:
                    diagnostics.append(
                        self.diagnostic(
                            path,
                            node,
                            f"direct {func.id}() call bypasses the "
                            "EvaluationContext region cache",
                        )
                    )
        return diagnostics
