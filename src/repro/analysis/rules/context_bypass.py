"""Rule: uncertainty regions are built through the EvaluationContext.

The context's region/presence caches (PR 1) are only coherent if every
region derivation goes through :meth:`EvaluationContext.snapshot_region` /
:meth:`EvaluationContext.interval_uncertainty` — a direct call to the
low-level builders skips the memo layer, the stats counters and the
params-epoch stamping, so cached and fresh answers can silently diverge.
This rule flags imports and bare calls of the low-level builders outside
the modules that implement the caching layer itself.

The live-ingestion path (PR 3) adds a second coherence seam: appending a
record must bump the context's per-object tail epoch
(:meth:`EvaluationContext.note_append`) *and* patch the AR-tree delta, or
cached trail episodes keep serving stale extrapolations.
:meth:`FlowEngine.ingest` is the only call site that does all three
atomically, so direct ``.append_record(...)`` / ``.patch_tail(...)`` calls
on an AR-tree outside the index/engine layers are flagged too.

The storage seam (PR 8) closes the loop underneath: a
:class:`~repro.storage.base.StorageBackend` mutated directly — a bare
``.append_row(...)`` / ``.rewrite_tail_row(...)`` outside the live
table's write-through path — desynchronises the durable generation
counter from the table, the AR-tree delta and the cache epochs, so a
later recovery replays history the in-memory layers never saw (or
vice versa).  Producer seams that write *before* any table exists (the
CSV importer, the datagen ``--store`` CLI) carry explicit suppressions.

``__init__.py`` re-exports are exempt (the names stay public for low-level
use, e.g. ablation studies — which then carry an explicit suppression).
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..linter import Diagnostic
from .base import Rule

__all__ = ["ContextBypassRule"]

#: The low-level builder functions owned by the caching layer.
_GUARDED = frozenset({"snapshot_region", "interval_uncertainty"})

#: AR-tree mutators owned by the ingest seam (ShardState keeps the tree,
#: the live table and the context generation in lockstep).
_GUARDED_MUTATORS = frozenset({"append_record", "patch_tail"})

#: ShardState mutators owned by the coordinator seam: a shard mutated
#: behind its coordinator's back diverges from the routing partition and
#: the coordinator's generation counter.
_GUARDED_SHARD_MUTATORS = frozenset(
    {
        "ingest_batch",
        "ingest_open_episode",
        "extend_open_episode",
        "close_open_episode",
    }
)

#: Path fragments of the modules allowed to touch the builders directly:
#: the context itself and the uncertainty package implementing them.
_BUILDER_ALLOWED = (
    ("core", "uncertainty"),
    ("core", "context.py"),
    ("repro", "analysis"),
)

#: Path fragments allowed to mutate AR-trees directly: the index module
#: implementing the mutators and the shard's atomic ingest path.
_MUTATOR_ALLOWED = (
    ("index", "artree.py"),
    ("core", "shard.py"),
    ("repro", "analysis"),
)

#: Path fragments allowed to call shard mutators directly: the shard
#: itself, the engine facade (its single shard) and the coordinator
#: (which routes by the partition hash).
_SHARD_MUTATOR_ALLOWED = (
    ("core", "shard.py"),
    ("core", "engine.py"),
    ("core", "coordinator.py"),
    ("repro", "analysis"),
)

#: Storage-backend mutators owned by the live table's write-through path.
_GUARDED_STORAGE_MUTATORS = frozenset({"append_row", "rewrite_tail_row"})

#: Path fragments allowed to mutate storage backends directly: the
#: storage package itself and the table that owns the write-through.
_STORAGE_MUTATOR_ALLOWED = (
    ("repro", "storage"),
    ("tracking", "table.py"),
    ("repro", "analysis"),
)


def _matches(path: Path, fragments: tuple[tuple[str, ...], ...]) -> bool:
    parts = path.parts
    for fragment in fragments:
        for i in range(len(parts) - len(fragment) + 1):
            if parts[i : i + len(fragment)] == fragment:
                return True
    return False


class ContextBypassRule(Rule):
    name = "context-bypass"
    description = (
        "no direct snapshot_region()/interval_uncertainty() outside the "
        "EvaluationContext caching layer, no direct AR-tree "
        "append_record()/patch_tail() outside the shard ingest path, "
        "no ShardState mutation outside the coordinator/engine seam, and "
        "no StorageBackend append_row()/rewrite_tail_row() outside the "
        "live table's write-through path"
    )
    paper_ref = (
        "PR 1 cache coherence: memoized UR(o, t) / UR(o, [ts, te]) must be "
        "the only derivation path (Sections 3.1-3.2); PR 3 extends the "
        "invariant to live appends (Section 4.1 index maintenance); the "
        "sharded coordinator extends it to the object partition "
        "(Definition 2's per-object flow decomposition); the storage seam "
        "extends it to the durable generation counter recovery replays"
    )

    def applies_to(self, path: Path) -> bool:
        # Both seams exempt the analysis package itself; everything else is
        # filtered per-category inside check().
        return not _matches(path, (("repro", "analysis"),))

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        source = Path(path)
        check_builders = not _matches(source, _BUILDER_ALLOWED)
        check_mutators = not _matches(source, _MUTATOR_ALLOWED)
        check_shard_mutators = not _matches(source, _SHARD_MUTATOR_ALLOWED)
        check_storage_mutators = not _matches(source, _STORAGE_MUTATOR_ALLOWED)
        is_reexport_module = source.name == "__init__.py"
        for node in ast.walk(tree):
            if (
                check_builders
                and isinstance(node, ast.ImportFrom)
                and not is_reexport_module
            ):
                for alias in node.names:
                    if alias.name in _GUARDED:
                        diagnostics.append(
                            self.diagnostic(
                                path,
                                node,
                                f"import of low-level {alias.name}(); derive "
                                f"regions through EvaluationContext.{alias.name} "
                                "so the memo layer stays coherent",
                            )
                        )
            elif check_builders and isinstance(node, ast.Import):
                for alias in node.names:
                    if "core.uncertainty" in alias.name:
                        diagnostics.append(
                            self.diagnostic(
                                path,
                                node,
                                f"import of {alias.name}; derive regions "
                                "through EvaluationContext instead of the "
                                "uncertainty modules",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    check_builders
                    and isinstance(func, ast.Name)
                    and func.id in _GUARDED
                ):
                    diagnostics.append(
                        self.diagnostic(
                            path,
                            node,
                            f"direct {func.id}() call bypasses the "
                            "EvaluationContext region cache",
                        )
                    )
                elif (
                    check_mutators
                    and isinstance(func, ast.Attribute)
                    and func.attr in _GUARDED_MUTATORS
                ):
                    diagnostics.append(
                        self.diagnostic(
                            path,
                            node,
                            f"direct .{func.attr}() mutates the AR-tree "
                            "without bumping the context generation; ingest "
                            "records through FlowEngine.ingest() instead",
                        )
                    )
                elif (
                    check_shard_mutators
                    and isinstance(func, ast.Attribute)
                    and func.attr in _GUARDED_SHARD_MUTATORS
                ):
                    diagnostics.append(
                        self.diagnostic(
                            path,
                            node,
                            f"direct .{func.attr}() mutates a ShardState "
                            "behind the coordinator's back; route records "
                            "through ShardedFlowEngine.ingest() (or the "
                            "engine facade) so partitioning and generation "
                            "stay coherent",
                        )
                    )
                elif (
                    check_storage_mutators
                    and isinstance(func, ast.Attribute)
                    and func.attr in _GUARDED_STORAGE_MUTATORS
                ):
                    diagnostics.append(
                        self.diagnostic(
                            path,
                            node,
                            f"direct .{func.attr}() writes to a storage "
                            "backend behind the tracking table's back; "
                            "ingest through LiveTrackingTable.append() / "
                            "FlowEngine.ingest() so the durable generation "
                            "counter, the index and the cache epochs stay "
                            "in lockstep",
                        )
                    )
        return diagnostics
