"""Rule: the service talks to the engine only through the engine actor.

The serving layer's whole concurrency story (PR 10) is the single-writer
actor: HTTP handlers run interleaved on the event loop, the engine is
single-threaded and lock-free, and the two coexist only because every
engine operation is a closure submitted to the actor's queue and run by
its one worker thread.  A handler that calls an engine method directly —
``engine.ingest(...)`` from a coroutine, a peek at ``snapshot_topk``, or
worse a reach into ``ShardState``/storage internals — executes on the
event-loop thread concurrently with the actor's worker and silently
breaks both thread-safety and the deterministic ingest/query ordering
the concurrency battery pins down.

This rule flags, inside :mod:`repro.serve` (minus the actor module that
*implements* the seam and the client/smoke modules that run in other
processes), any attribute call named like an engine mutator, an engine
query, a shard mutator, an AR-tree mutator or a storage writer — unless
the receiver chain ends in ``actor`` / ``_actor`` (i.e. the call goes
through the sanctioned :class:`~repro.serve.actor.EngineActor` facade).
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..linter import Diagnostic
from .base import Rule

__all__ = ["ServeSeamRule"]

#: Engine mutators: must run on the actor's worker, in queue order.
_ENGINE_MUTATORS = frozenset(
    {"ingest", "ingest_open", "extend_episode", "close_episode", "checkpoint"}
)

#: Engine queries: reads warm the region/presence caches, so they are
#: writes to the engine's internals and need the same serialization.
_ENGINE_QUERIES = frozenset(
    {
        "snapshot_topk",
        "interval_topk",
        "snapshot_flows",
        "interval_flows",
        "snapshot_density_topk",
        "interval_density_topk",
    }
)

#: Deeper internals a handler must never reach past the engine facade.
_INTERNALS = frozenset(
    {
        "ingest_batch",
        "ingest_open_episode",
        "extend_open_episode",
        "close_open_episode",
        "append_record",
        "patch_tail",
        "append_row",
        "rewrite_tail_row",
    }
)

_GUARDED = _ENGINE_MUTATORS | _ENGINE_QUERIES | _INTERNALS

#: Modules inside repro/serve exempt from the rule: the actor implements
#: the seam (its closures run on the worker thread by construction), and
#: the client/smoke modules are client-side code whose method names
#: mirror the endpoints but have no engine in reach.
_EXEMPT_NAMES = frozenset({"actor.py", "client.py", "smoke.py"})

#: The sanctioned receivers: a terminal ``actor``/``_actor`` name means
#: the call is one of EngineActor's async conveniences.
_ACTOR_NAMES = frozenset({"actor", "_actor"})


def _in_serve(path: Path) -> bool:
    parts = path.parts
    for i in range(len(parts) - 1):
        if parts[i : i + 2] == ("repro", "serve"):
            return True
    return False


def _terminal_name(node: ast.expr) -> str | None:
    """The last name in a receiver chain: ``self.app.actor`` -> 'actor'."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ServeSeamRule(Rule):
    name = "serve-seam"
    description = (
        "repro.serve handlers route every engine operation through the "
        "EngineActor queue; no direct engine/ShardState/storage calls "
        "from coroutine code"
    )
    paper_ref = (
        "PR 10 serving model: the engine stays single-threaded and "
        "lock-free (its caches and index deltas mutate on every call, "
        "queries included), so the actor queue is the only sound seam "
        "between concurrent HTTP traffic and the paper's flow machinery; "
        "queue order is also what makes served ingest/query histories "
        "deterministic and bit-identical to serial replay"
    )

    def applies_to(self, path: Path) -> bool:
        return _in_serve(path) and path.name not in _EXEMPT_NAMES

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _GUARDED:
                continue
            receiver = _terminal_name(func.value)
            if receiver in _ACTOR_NAMES:
                continue
            if func.attr in _INTERNALS:
                hint = (
                    "reaches past the engine facade into shard/index/"
                    "storage internals"
                )
            elif func.attr in _ENGINE_MUTATORS:
                hint = "mutates the engine off the actor's worker thread"
            else:
                hint = (
                    "queries the engine off the actor's worker thread "
                    "(queries mutate the caches too)"
                )
            diagnostics.append(
                self.diagnostic(
                    path,
                    node,
                    f"direct .{func.attr}() {hint}; submit it through the "
                    "EngineActor (actor.query/ingest/…) so the single-"
                    "writer ordering holds",
                )
            )
        return diagnostics
