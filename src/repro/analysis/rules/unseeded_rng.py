"""Rule: every random source must carry an explicit seed.

The paper's experiments (Section 5.1: random-waypoint workloads, Zipf room
popularity) are reproducible only because every generator derives from a
config seed.  A ``random.Random()`` without arguments, a module-level
``random.*`` call (shared global state) or a legacy ``np.random.*``
sampling call silently re-randomises datasets between runs — and with it
every benchmark figure.  Construct ``random.Random(seed)`` /
``np.random.default_rng(seed)`` and thread the instance through.
"""

from __future__ import annotations

import ast

from ..linter import Diagnostic
from .base import Rule

__all__ = ["UnseededRngRule"]

#: NumPy constructors that are fine when given a seed argument.
_NP_SEEDABLE = {"default_rng", "Generator", "RandomState", "SeedSequence"}


def _attribute_chain(node: ast.expr) -> list[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return []
    return parts[::-1]


class UnseededRngRule(Rule):
    name = "unseeded-rng"
    description = "no random.Random()/module-level random.*/np.random.* without a seed"
    paper_ref = "Section 5.1 workload generation (reproducible seeds end to end)"

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node)
            if message is not None:
                diagnostics.append(self.diagnostic(path, node, message))
        return diagnostics

    def _violation(self, node: ast.Call) -> str | None:
        has_args = bool(node.args or node.keywords)
        chain = _attribute_chain(node.func)
        # Bare ``Random()`` (imported via ``from random import Random``).
        if chain == ["Random"] and not has_args:
            return "Random() without a seed; pass an explicit seed"
        if len(chain) < 2:
            return None
        head, *rest = chain
        if head == "random":
            if rest == ["Random"]:
                if not has_args:
                    return "random.Random() without a seed; pass an explicit seed"
                return None
            # Any other random.* call uses the interpreter-global RNG.
            return (
                f"module-level random.{rest[0]}() uses the shared global RNG; "
                "construct random.Random(seed) and thread it through"
            )
        if head in ("np", "numpy") and rest and rest[0] == "random":
            if len(rest) == 1:
                return None  # bare attribute access, e.g. an annotation
            func = rest[1]
            if func in _NP_SEEDABLE:
                if not has_args:
                    return f"np.random.{func}() without a seed; pass an explicit seed"
                return None
            return (
                f"legacy np.random.{func}() uses the global NumPy RNG; "
                "use np.random.default_rng(seed)"
            )
        return None
