"""The rule protocol shared by all lint rules."""

from __future__ import annotations

import ast
from pathlib import Path

from ..linter import Diagnostic

__all__ = ["Rule"]


class Rule:
    """One named check over a parsed module.

    Subclasses set ``name`` (the suppression token), ``description`` (one
    line for ``--list-rules``) and ``paper_ref`` (the paper equation or
    architectural invariant the rule protects), and implement
    :meth:`check`.
    """

    name: str = ""
    description: str = ""
    paper_ref: str = ""

    def applies_to(self, path: Path) -> bool:
        """Whether the rule runs on ``path`` at all (default: every file)."""
        return True

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        """All violations in ``tree``."""
        raise NotImplementedError

    def diagnostic(self, path: str, node: ast.AST, message: str) -> Diagnostic:
        """A diagnostic anchored at ``node``'s location."""
        return Diagnostic(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )
