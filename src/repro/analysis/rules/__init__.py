"""The repo-specific lint rules.

Each rule protects one paper equation or architectural invariant; the
mapping is documented per rule (``paper_ref``) and collected in
``docs/paper_mapping.md`` ("Correctness tooling").
"""

from __future__ import annotations

from .base import Rule
from .context_bypass import ContextBypassRule
from .float_equality import FloatEqualityRule
from .mutable_defaults import MutableDefaultRule
from .serve_seam import ServeSeamRule
from .unseeded_rng import UnseededRngRule
from .wall_clock import WallClockRule

__all__ = [
    "ALL_RULES",
    "ContextBypassRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "Rule",
    "ServeSeamRule",
    "UnseededRngRule",
    "WallClockRule",
    "rules_by_name",
]

#: The default rule set, in diagnostic-output order.
ALL_RULES: tuple[Rule, ...] = (
    FloatEqualityRule(),
    UnseededRngRule(),
    ContextBypassRule(),
    MutableDefaultRule(),
    WallClockRule(),
    ServeSeamRule(),
)


def rules_by_name() -> dict[str, Rule]:
    """Name -> rule instance for the default rule set."""
    return {rule.name: rule for rule in ALL_RULES}
