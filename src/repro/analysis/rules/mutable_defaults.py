"""Rule: no mutable default arguments.

A list/dict/set default is created once at function definition time and
shared across calls — state leaks between queries, which is exactly the
class of bug the evaluation context was introduced to rule out.  Use
``None`` and construct inside the function.
"""

from __future__ import annotations

import ast

from ..linter import Diagnostic
from .base import Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})


def _is_mutable(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    name = "mutable-default"
    description = "no mutable default arguments (shared across calls)"
    paper_ref = "EvaluationContext state isolation (no cross-query leakage)"

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if _is_mutable(default):
                    diagnostics.append(
                        self.diagnostic(
                            path,
                            default,
                            "mutable default argument is shared across calls; "
                            "default to None and construct per call",
                        )
                    )
        return diagnostics
