"""Rule: no exact equality against float literals.

Presence values, areas and flows are grid-quadrature results — sums and
ratios of floats — so ``x == 0.35`` silently becomes dead code after any
refactor that reorders an accumulation.  The paper's determinism guarantee
(identical flows from the iterative and join strategies) rests on comparing
such values with a tolerance: use :func:`math.isclose` or the shared
helpers :func:`repro.geometry.area.near_zero` /
:func:`repro.geometry.area.floats_equal`.

``assert`` statements are exempt: exact expected values in tests (and the
suite's cached-vs-uncached bit-identity checks) are intentional exact
comparisons, not control flow that can silently rot.
"""

from __future__ import annotations

import ast

from ..linter import Diagnostic
from .base import Rule

__all__ = ["FloatEqualityRule"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return type(node.value) is float
    # A negated literal (``-0.5``) parses as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "FloatEqualityRule", path: str):
        self.rule = rule
        self.path = path
        self.diagnostics: list[Diagnostic] = []

    def visit_Assert(self, node: ast.Assert) -> None:
        # Exact expected values in assertions are intentional; do not
        # descend into the asserted expression.
        return

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                self.diagnostics.append(
                    self.rule.diagnostic(
                        self.path,
                        node,
                        "exact float equality; use math.isclose or "
                        "repro.geometry.area.near_zero/floats_equal",
                    )
                )
                break
        self.generic_visit(node)


class FloatEqualityRule(Rule):
    name = "float-equality"
    description = "no ==/!= against float literals outside assert statements"
    paper_ref = (
        "Definition 1 (presence is a quadrature ratio) and the iterative-"
        "vs-join flow-identity guarantee"
    )

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        visitor = _Visitor(self, path)
        visitor.visit(tree)
        return visitor.diagnostics
