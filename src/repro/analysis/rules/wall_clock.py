"""Rule: no wall-clock reads inside the query-engine hot paths.

The benchmark harness measures ``core``/``geometry``/``index`` code from
the outside (``repro.bench.harness``); a ``time.time()`` or
``datetime.now()`` *inside* those packages either smuggles timing into
results (bench-integrity) or — worse — makes a query answer depend on when
it ran.  Query semantics depend only on the queried timestamps, never on
the current time.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..linter import Diagnostic
from .base import Rule

__all__ = ["WallClockRule"]

#: The hot-path packages the rule guards (path fragments).
_HOT_FRAGMENTS = (
    ("repro", "core"),
    ("repro", "geometry"),
    ("repro", "index"),
)

_TIME_FUNCS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "thread_time"}
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    name = "wall-clock"
    description = "no time.time()/datetime.now() in core/geometry/index hot paths"
    paper_ref = (
        "Section 5 benchmark integrity: engine code is timed from the "
        "outside, and answers depend only on queried timestamps"
    )

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        for fragment in _HOT_FRAGMENTS:
            for i in range(len(parts) - len(fragment) + 1):
                if parts[i : i + len(fragment)] == fragment:
                    return True
        return False

    def check(self, tree: ast.Module, path: str) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            attribute = node.func
            value = attribute.value
            base = None
            if isinstance(value, ast.Name):
                base = value.id
            elif isinstance(value, ast.Attribute):
                base = value.attr
            if base == "time" and attribute.attr in _TIME_FUNCS:
                diagnostics.append(
                    self.diagnostic(
                        path,
                        node,
                        f"time.{attribute.attr}() in an engine hot path; "
                        "time from the bench harness instead",
                    )
                )
            elif base == "datetime" and attribute.attr in _DATETIME_FUNCS:
                diagnostics.append(
                    self.diagnostic(
                        path,
                        node,
                        f"datetime.{attribute.attr}() in an engine hot path; "
                        "query answers must not depend on the current time",
                    )
                )
        return diagnostics
