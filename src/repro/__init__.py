"""repro — Finding frequently visited indoor POIs from symbolic tracking data.

A complete, from-scratch implementation of the system described in
*"Finding Frequently Visited Indoor POIs Using Symbolic Indoor Tracking
Data"* (Lu, Guo, Yang, Jensen — EDBT 2016), including every substrate the
paper depends on:

* :mod:`repro.geometry` — circles, rings, extended ellipses, polygons and
  composable regions with deterministic area quadrature;
* :mod:`repro.index` — an R-tree, a count-aggregate R-tree and the AR-tree
  temporal index over the tracking table;
* :mod:`repro.indoor` — floor plans, doors, POIs, device deployments and
  indoor walking distance;
* :mod:`repro.tracking` — raw readings, tracking records, the Object
  Tracking Table, proximity detection and movement simulation;
* :mod:`repro.core` — the paper's contribution: uncertainty regions,
  presence/flow, and the snapshot/interval top-k queries with iterative
  and join-based algorithms;
* :mod:`repro.datagen` — the paper's synthetic workload and a simulated
  Copenhagen Airport data set;
* :mod:`repro.bench` — the harness regenerating every evaluation figure.

The ten-second tour::

    from repro import FlowEngine
    from repro.datagen import SyntheticConfig, build_synthetic_dataset

    dataset = build_synthetic_dataset(SyntheticConfig(num_objects=200))
    engine = dataset.engine()
    for row in engine.interval_topk(t_start=0.0, t_end=600.0, k=5):
        print(f"{row.poi.name:30s}  flow={row.flow:.2f}")
"""

from .core import (
    FlowEngine,
    LiveFlowEngine,
    IntervalTopKQuery,
    PresenceEstimator,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
)
from .indoor import Deployment, Device, Door, FloorPlan, Poi, Room
from .tracking import (
    LiveTrackingTable,
    ObjectTrackingTable,
    RawReading,
    TrackingRecord,
)

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "Device",
    "Door",
    "FloorPlan",
    "FlowEngine",
    "IntervalTopKQuery",
    "LiveFlowEngine",
    "LiveTrackingTable",
    "ObjectTrackingTable",
    "Poi",
    "PresenceEstimator",
    "RankedPoi",
    "RawReading",
    "Room",
    "SnapshotTopKQuery",
    "TopKResult",
    "TrackingRecord",
    "__version__",
]
