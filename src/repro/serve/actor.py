"""The engine actor: one single-writer task owning the venue's engine.

The flow engines are deliberately single-threaded — their region and
presence caches, AR-tree delta buffers and stats counters are mutated
without locks on every call (queries included: a "read" warms caches).
Rather than wrapping each of those layers in locking, the service runs
**one actor per venue**: every engine operation — query, ingest, monitor
tick, checkpoint — is enqueued as a closure on an :class:`asyncio.Queue`
and executed by a single consumer task on a dedicated one-thread
executor.  The engine therefore sees exactly one operation at a time, in
queue order, and the whole ingest/query interleaving is serialized and
deterministic: the final engine state equals the same operations applied
serially, which the concurrency battery in ``tests/serve/`` pins down to
bit-identical top-k results.

HTTP handlers never touch the engine object itself (the ``serve-seam``
lint rule enforces it); they call the typed ``async`` methods below, each
of which routes through :meth:`EngineActor.submit`.

Standing monitors live actor-side too: a tick runs on the engine thread
like any other operation, and the resulting
:class:`~repro.core.monitor.TopKUpdate` is fanned out on the event-loop
thread to every subscriber's **bounded** queue.  A slow SSE consumer does
not stall the engine or other subscribers — the update is dropped for
that subscriber alone and counted (``Subscriber.dropped``, plus the
``serve.sse.dropped_updates`` counter in :mod:`repro.obs`).
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Union,
)

from ..core.monitor import (
    SlidingIntervalTopKMonitor,
    SnapshotTopKMonitor,
    TopKUpdate,
)
from ..core.queries import IntervalTopKQuery, SnapshotTopKQuery, TopKResult
from ..indoor.poi import Poi
from ..obs import counter, obs_enabled
from ..tracking.records import ObjectId, TrackingRecord
from .wire import QuerySpec

__all__ = [
    "EngineActor",
    "IngestBatch",
    "IngestOutcome",
    "ServableEngine",
    "Subscriber",
]

#: Default bound on queued-but-unprocessed engine operations; submits
#: beyond it apply backpressure (await) rather than growing memory.
DEFAULT_MAX_PENDING = 1024

#: Default per-subscriber SSE queue bound (see :class:`Subscriber`).
DEFAULT_SUBSCRIBER_QUEUE = 16


class ServableEngine(Protocol):
    """What the service needs from an engine.

    Satisfied by :class:`~repro.core.engine.FlowEngine`,
    :class:`~repro.core.engine.LiveFlowEngine` and
    :class:`~repro.core.coordinator.ShardedFlowEngine` — the actor is
    agnostic to whether one shard or a fleet answers.
    """

    @property
    def is_live(self) -> bool: ...

    @property
    def generation(self) -> int: ...

    def snapshot_topk(
        self,
        t: float,
        k: int,
        pois: Optional[Sequence[Poi]] = None,
        method: str = "join",
    ) -> TopKResult: ...

    def interval_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Optional[Sequence[Poi]] = None,
        method: str = "join",
        use_segment_mbrs: bool = True,
    ) -> TopKResult: ...

    def ingest(self, records: Iterable[TrackingRecord]) -> int: ...

    def ingest_open(self, record: TrackingRecord) -> None: ...

    def extend_episode(
        self, object_id: ObjectId, t_e: float
    ) -> TrackingRecord: ...

    def close_episode(
        self, object_id: ObjectId, t_e: Optional[float] = None
    ) -> TrackingRecord: ...

    def stats(self) -> dict[str, int]: ...

    def checkpoint(self) -> int: ...

    def close(self) -> None: ...


@dataclass(frozen=True, slots=True)
class IngestBatch:
    """One ``POST /ingest`` request, decoded: the ops to apply in order.

    All ops of a batch run inside a **single** actor submission, so a
    batch is atomic with respect to other requests — no other query or
    ingest interleaves between its records, its episode ops and its
    optional monitor tick.
    """

    records: tuple[TrackingRecord, ...] = ()
    open_episode: Optional[TrackingRecord] = None
    extend: Optional[tuple[ObjectId, float]] = None
    close: Optional[tuple[ObjectId, Optional[float]]] = None
    tick_t: Optional[float] = None


@dataclass(frozen=True, slots=True)
class IngestOutcome:
    """What one :class:`IngestBatch` did."""

    ingested: int
    generation: int
    updates: tuple[tuple[str, TopKUpdate], ...] = ()
    """``(monitor_id, update)`` for every standing monitor ticked by the
    batch's ``tick_t`` (empty when no tick was requested)."""


@dataclass(slots=True)
class Subscriber:
    """One SSE consumer's bounded update queue plus drop accounting.

    ``None`` on the queue is the end-of-stream sentinel (monitor deleted
    or server shutting down).  When the queue is full the *newest* update
    is dropped for this subscriber — monitors re-deliver full results
    every tick, so a consumer that catches up is current again after one
    update — and ``dropped`` counts what it missed.
    """

    queue: "asyncio.Queue[Optional[TopKUpdate]]"
    dropped: int = 0


@dataclass(slots=True)
class _StandingMonitor:
    monitor_id: str
    kind: str
    monitor: Union[SnapshotTopKMonitor, SlidingIntervalTopKMonitor]
    subscribers: list[Subscriber] = field(default_factory=list)
    updates_published: int = 0

    def describe(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "monitor_id": self.monitor_id,
            "kind": self.kind,
            "k": self.monitor.k,
            "method": self.monitor.method,
            "subscribers": len(self.subscribers),
            "updates_published": self.updates_published,
            "dropped_updates": sum(s.dropped for s in self.subscribers),
        }
        if isinstance(self.monitor, SlidingIntervalTopKMonitor):
            payload["window_seconds"] = self.monitor.window_seconds
        return payload


@dataclass(slots=True)
class _Work:
    fn: Callable[[], Any]
    future: "asyncio.Future[Any]"


class EngineActor:
    """Single-writer ownership of one engine behind an async facade.

    Args:
        engine: The venue's engine; the actor takes ownership of its
            lifecycle (:meth:`stop` closes it unless told otherwise).
        max_pending: Bound on queued operations (backpressure beyond it).
    """

    def __init__(
        self, engine: ServableEngine, max_pending: int = DEFAULT_MAX_PENDING
    ) -> None:
        self._engine = engine
        self._queue: "asyncio.Queue[Optional[_Work]]" = asyncio.Queue(
            maxsize=max_pending
        )
        # One dedicated thread: the engine only ever runs here, so the
        # single-threaded engine needs no locks and the event loop stays
        # free to accept connections while a query computes.
        self._thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="engine-actor"
        )
        self._task: Optional["asyncio.Task[None]"] = None
        self._monitors: dict[str, _StandingMonitor] = {}
        self._monitor_ids = itertools.count(1)
        self._stopping = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def engine(self) -> ServableEngine:
        """The owned engine — for introspection only.

        Calling engine methods from outside the actor breaks the
        single-writer guarantee (and the ``serve-seam`` lint); route work
        through the async methods instead.
        """
        return self._engine

    @property
    def processed(self) -> int:
        """Operations executed so far (drained sentinel excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Operations queued but not yet executed."""
        return self._queue.qsize()

    async def start(self) -> None:
        """Spawn the consumer task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="engine-actor"
            )

    async def stop(self, close_engine: bool = True) -> None:
        """Drain the queue, end subscriber streams, flush and close.

        Every operation already queued completes first (their futures
        resolve normally); new submissions are rejected.  With
        ``close_engine`` (the default) the engine's idempotent
        ``close()`` then runs on the engine thread — checkpointing the
        storage WAL into its snapshot and releasing executors — so a
        graceful shutdown never loses acknowledged writes nor leaves
        worker processes behind.
        """
        if self._stopping:
            return
        self._stopping = True
        if self._task is not None:
            await self._queue.put(None)
            await self._task
            self._task = None
        for standing in self._monitors.values():
            for subscriber in standing.subscribers:
                self._push(standing, subscriber, None)
        if close_engine:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._thread, self._engine.close)
        self._thread.shutdown(wait=True)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            work = await self._queue.get()
            try:
                if work is None:
                    return
                try:
                    result = await loop.run_in_executor(
                        self._thread, work.fn
                    )
                except Exception as error:
                    if not work.future.cancelled():
                        work.future.set_exception(error)
                else:
                    self._processed += 1
                    if not work.future.cancelled():
                        work.future.set_result(result)
            finally:
                self._queue.task_done()

    async def submit(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` on the engine thread, in queue order; await result.

        The one door to the engine: every public method below builds a
        closure and passes it here.

        Raises:
            RuntimeError: If the actor is stopping or was never started.
        """
        if self._stopping:
            raise RuntimeError("engine actor is stopped")
        if self._task is None:
            raise RuntimeError("engine actor is not started")
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        await self._queue.put(_Work(fn=fn, future=future))
        return await future

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    async def query(self, spec: QuerySpec) -> TopKResult:
        """Evaluate one top-k query (Problem 1 or 2) in queue order."""
        engine = self._engine

        def run() -> TopKResult:
            query = spec.query
            if isinstance(query, SnapshotTopKQuery):
                return engine.snapshot_topk(
                    query.t, query.k, method=spec.method
                )
            assert isinstance(query, IntervalTopKQuery)
            return engine.interval_topk(
                query.t_start, query.t_end, query.k, method=spec.method
            )

        result: TopKResult = await self.submit(run)
        return result

    async def stats(self) -> dict[str, int]:
        """The engine's evaluation counters (cache hits, regions, …)."""
        outcome: dict[str, int] = await self.submit(self._engine.stats)
        return outcome

    async def health(self) -> dict[str, Any]:
        """Liveness plus the engine's identity counters, via the queue.

        Going through the queue makes ``GET /health`` an end-to-end
        probe: it only answers while the actor is draining work.
        """
        engine = self._engine

        def probe() -> dict[str, Any]:
            return {
                "engine": type(engine).__name__,
                "live": engine.is_live,
                "generation": engine.generation,
            }

        payload: dict[str, Any] = await self.submit(probe)
        payload["monitors"] = len(self._monitors)
        payload["pending"] = self.pending
        payload["processed"] = self.processed
        return payload

    async def checkpoint(self) -> int:
        """Fold the storage WAL into its snapshot (live engines)."""
        folded: int = await self.submit(self._engine.checkpoint)
        return folded

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    async def ingest(self, batch: IngestBatch) -> IngestOutcome:
        """Apply one ingest batch atomically; optionally tick monitors.

        Raises (through the returned future):
            RuntimeError: If the engine is frozen-batch.
            ValueError: If a record fails at-append validation — records
                before it in the batch stay ingested, exactly as the
                engine's own partial-batch semantics document.
        """
        engine = self._engine
        monitors = list(self._monitors.values()) if batch.tick_t is not None else []

        def run() -> IngestOutcome:
            ingested = 0
            if batch.records:
                ingested += engine.ingest(batch.records)
            if batch.open_episode is not None:
                engine.ingest_open(batch.open_episode)
                ingested += 1
            if batch.extend is not None:
                engine.extend_episode(batch.extend[0], batch.extend[1])
            if batch.close is not None:
                engine.close_episode(batch.close[0], batch.close[1])
            updates: list[tuple[str, TopKUpdate]] = []
            if batch.tick_t is not None:
                for standing in monitors:
                    updates.append(
                        (
                            standing.monitor_id,
                            standing.monitor.advance(batch.tick_t),
                        )
                    )
            return IngestOutcome(
                ingested=ingested,
                generation=engine.generation,
                updates=tuple(updates),
            )

        outcome: IngestOutcome = await self.submit(run)
        for monitor_id, update in outcome.updates:
            standing = self._monitors.get(monitor_id)
            if standing is not None:
                self._broadcast(standing, update)
        return outcome

    # ------------------------------------------------------------------
    # Standing monitors and their subscribers
    # ------------------------------------------------------------------

    def create_monitor(
        self,
        kind: str,
        k: int,
        window_seconds: Optional[float] = None,
        method: str = "join",
    ) -> str:
        """Register a standing monitor; returns its id.

        Args:
            kind: ``"snapshot"`` (Problem 1 at each tick's instant) or
                ``"interval"`` (Problem 2 over a trailing window).
            k: Top-k size.
            window_seconds: Trailing window length; required for (and
                only meaningful with) ``kind="interval"``.
            method: Query strategy, ``"join"`` or ``"iterative"``.

        Raises:
            ValueError: On an unknown kind, a missing/extra window, or
                invalid ``k``/``window_seconds`` (from the monitors'
                own validation).
        """
        monitor: Union[SnapshotTopKMonitor, SlidingIntervalTopKMonitor]
        if kind == "snapshot":
            if window_seconds is not None:
                raise ValueError(
                    "window_seconds only applies to interval monitors"
                )
            monitor = SnapshotTopKMonitor(self._engine, k=k, method=method)
        elif kind == "interval":
            if window_seconds is None:
                raise ValueError("interval monitors need window_seconds")
            monitor = SlidingIntervalTopKMonitor(
                self._engine, k=k, window_seconds=window_seconds, method=method
            )
        else:
            raise ValueError(
                f"unknown monitor kind {kind!r}; expected 'snapshot' or "
                "'interval'"
            )
        monitor_id = f"mon-{next(self._monitor_ids)}"
        self._monitors[monitor_id] = _StandingMonitor(
            monitor_id=monitor_id, kind=kind, monitor=monitor
        )
        return monitor_id

    def monitor_info(self, monitor_id: str) -> Optional[dict[str, Any]]:
        """The monitor's description, or ``None`` if unknown."""
        standing = self._monitors.get(monitor_id)
        return None if standing is None else standing.describe()

    def list_monitors(self) -> list[dict[str, Any]]:
        """Descriptions of every standing monitor, in creation order."""
        return [s.describe() for s in self._monitors.values()]

    def drop_monitor(self, monitor_id: str) -> bool:
        """Delete a monitor, ending all its subscriber streams."""
        standing = self._monitors.pop(monitor_id, None)
        if standing is None:
            return False
        for subscriber in standing.subscribers:
            self._push(standing, subscriber, None)
        standing.subscribers.clear()
        return True

    async def tick_monitor(self, monitor_id: str, t: float) -> TopKUpdate:
        """Advance one monitor to ``t`` and broadcast the update.

        Raises:
            KeyError: If the monitor id is unknown.
            ValueError: If ``t`` precedes the monitor's previous tick.
        """
        standing = self._monitors.get(monitor_id)
        if standing is None:
            raise KeyError(f"unknown monitor {monitor_id!r}")
        monitor = standing.monitor
        update: TopKUpdate = await self.submit(lambda: monitor.advance(t))
        self._broadcast(standing, update)
        return update

    def subscribe(
        self, monitor_id: str, queue_size: int = DEFAULT_SUBSCRIBER_QUEUE
    ) -> Subscriber:
        """Attach a bounded-queue subscriber to a monitor's updates.

        Raises:
            KeyError: If the monitor id is unknown.
            ValueError: If ``queue_size`` is not positive.
        """
        standing = self._monitors.get(monitor_id)
        if standing is None:
            raise KeyError(f"unknown monitor {monitor_id!r}")
        if queue_size < 1:
            raise ValueError("queue_size must be positive")
        subscriber = Subscriber(queue=asyncio.Queue(maxsize=queue_size))
        standing.subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, monitor_id: str, subscriber: Subscriber) -> None:
        """Detach a subscriber (idempotent; unknown monitors ignored)."""
        standing = self._monitors.get(monitor_id)
        if standing is None:
            return
        try:
            standing.subscribers.remove(subscriber)
        except ValueError:
            pass

    def _broadcast(
        self, standing: _StandingMonitor, update: TopKUpdate
    ) -> None:
        standing.updates_published += 1
        for subscriber in standing.subscribers:
            self._push(standing, subscriber, update)

    def _push(
        self,
        standing: _StandingMonitor,
        subscriber: Subscriber,
        update: Optional[TopKUpdate],
    ) -> None:
        """Offer one update (or the end sentinel) to a bounded queue.

        The sentinel must always land, so one queued update is evicted
        for it if needed; regular updates are dropped (and counted) when
        the subscriber is full.
        """
        try:
            subscriber.queue.put_nowait(update)
        except asyncio.QueueFull:
            if update is None:
                try:
                    subscriber.queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - raced drain
                    pass
                subscriber.queue.put_nowait(None)
                return
            subscriber.dropped += 1
            if obs_enabled():
                counter("serve.sse.dropped_updates", unit="updates").inc()
