"""The service application: routes, handlers and lifecycle.

:class:`ServeApp` wires one :class:`~repro.serve.actor.EngineActor`
(owning the venue's engine), one :class:`~repro.serve.jobs.JobStore` and
the :class:`~repro.serve.http.HttpServer` into the endpoint catalogue of
``docs/serving.md``:

========  ==========================  =====================================
Method    Path                        Purpose
========  ==========================  =====================================
GET       /health                     liveness + engine identity counters
GET       /metrics                    :mod:`repro.obs` snapshot + stats
POST      /queries                    top-k query (``?sync=false`` → job)
GET       /jobs/{id}                  deferred query status/result
POST      /ingest                     record batch + episode ops (+ tick)
POST      /checkpoint                 fold the storage WAL
POST      /monitors                   create a standing monitor
GET       /monitors                   list standing monitors
GET       /monitors/{id}              one monitor's description
DELETE    /monitors/{id}              drop a monitor, ending its streams
POST      /monitors/{id}/tick         advance a monitor, broadcast update
GET       /monitors/{id}/stream       SSE feed of the monitor's updates
========  ==========================  =====================================

Handlers never call the engine: they decode the wire payload, submit to
the actor, encode the outcome (the ``serve-seam`` lint rule keeps it that
way).  Exceptions map to the uniform JSON error body in
:func:`repro.serve.http._error_response`.

:class:`ServerHandle` runs the whole app on a dedicated thread with its
own event loop — the harness tests, the benchmark and the CI smoke
client are synchronous, and the handle gives them a real listening
server with a blocking ``start()``/``stop()`` seam.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Mapping, Optional, Union

from ..obs import snapshot_dict
from ..tracking.records import ObjectId, TrackingRecord
from .actor import (
    DEFAULT_MAX_PENDING,
    DEFAULT_SUBSCRIBER_QUEUE,
    EngineActor,
    IngestBatch,
    ServableEngine,
)
from .http import (
    SSE_HEARTBEAT,
    EventStream,
    HttpServer,
    Request,
    Response,
    Router,
)
from .jobs import JobStore
from .wire import (
    QuerySpec,
    WireError,
    decode_query,
    decode_record,
    dumps,
    encode_result,
    encode_update,
    loads,
)

__all__ = ["ServeApp", "ServeConfig", "ServerHandle"]


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Tunables of one server process."""

    host: str = "127.0.0.1"
    port: int = 0
    """Listening port; ``0`` binds an ephemeral one (read it back from
    :attr:`ServeApp.port` after start)."""
    sse_queue_size: int = DEFAULT_SUBSCRIBER_QUEUE
    """Per-subscriber update queue bound; beyond it updates are dropped
    for that subscriber (and counted)."""
    max_pending: int = DEFAULT_MAX_PENDING
    """Engine-actor queue bound (backpressure beyond it)."""
    sse_heartbeat_seconds: float = 15.0
    """How long a stream may sit idle before a comment heartbeat frame
    is written.  The heartbeat is invisible to SSE clients but fails
    against a dead socket, so subscribers whose monitor never ticks are
    still reaped instead of leaking connection tasks."""


class ServeApp:
    """One venue's service: engine actor + job store + HTTP front."""

    def __init__(
        self, engine: ServableEngine, config: Optional[ServeConfig] = None
    ) -> None:
        self.config = config or ServeConfig()
        self.actor = EngineActor(engine, max_pending=self.config.max_pending)
        self.jobs = JobStore()
        self.router = Router()
        self._register_routes()
        self.server = HttpServer(
            router=self.router, host=self.config.host, port=self.config.port
        )
        self._job_tasks: "set[asyncio.Task[None]]" = set()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self.server.port

    async def start(self) -> None:
        """Start the actor and bind the listener."""
        await self.actor.start()
        await self.server.start()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, settle jobs, drain, flush.

        Order matters: the listener closes first (cancelling SSE
        streams), in-flight deferred jobs settle next, and the actor
        stops last — draining every queued operation and then running
        the engine's ``close()`` (checkpoint + executor teardown), so an
        acknowledged write is on disk when ``stop()`` returns.
        """
        await self.server.stop()
        if self._job_tasks:
            await asyncio.gather(*list(self._job_tasks), return_exceptions=True)
        await self.actor.stop()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        add = self.router.add
        add("GET", r"/health", "health", self._health)
        add("GET", r"/metrics", "metrics", self._metrics)
        add("POST", r"/queries", "queries", self._queries)
        add("GET", r"/jobs/(?P<job_id>[^/]+)", "jobs", self._job)
        add("POST", r"/ingest", "ingest", self._ingest)
        add("POST", r"/checkpoint", "checkpoint", self._checkpoint)
        add("POST", r"/monitors", "monitors_create", self._monitor_create)
        add("GET", r"/monitors", "monitors_list", self._monitor_list)
        add(
            "GET",
            r"/monitors/(?P<monitor_id>[^/]+)",
            "monitors_get",
            self._monitor_get,
        )
        add(
            "DELETE",
            r"/monitors/(?P<monitor_id>[^/]+)",
            "monitors_delete",
            self._monitor_delete,
        )
        add(
            "POST",
            r"/monitors/(?P<monitor_id>[^/]+)/tick",
            "monitors_tick",
            self._monitor_tick,
        )
        add(
            "GET",
            r"/monitors/(?P<monitor_id>[^/]+)/stream",
            "monitors_stream",
            self._monitor_stream,
        )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def _health(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        payload = await self.actor.health()
        payload["jobs"] = self.jobs.counts()
        return Response.json(payload)

    async def _metrics(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        stats = await self.actor.stats()
        return Response.json(
            {
                "obs": snapshot_dict(),
                "engine": stats,
                "monitors": self.actor.list_monitors(),
            }
        )

    async def _queries(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        spec = decode_query(_body(request))
        if request.flag("sync", default=True):
            result = await self.actor.query(spec)
            return Response.json(encode_result(result))
        job = self.jobs.create(kind="query")
        task = asyncio.get_running_loop().create_task(
            self._run_job(job.job_id, spec), name=job.job_id
        )
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        return Response.json({"job_id": job.job_id, "status": "pending"}, status=202)

    async def _run_job(self, job_id: str, spec: QuerySpec) -> None:
        try:
            result = await self.actor.query(spec)
        except Exception as error:  # noqa: BLE001 - recorded on the job
            self.jobs.fail(job_id, f"{type(error).__name__}: {error}")
        else:
            self.jobs.finish(job_id, encode_result(result))

    async def _job(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        job = self.jobs.get(params["job_id"])
        if job is None:
            return Response.error(404, f"unknown job {params['job_id']!r}")
        return Response.json(job.as_dict())

    async def _ingest(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        batch = _decode_ingest(_body(request))
        outcome = await self.actor.ingest(batch)
        return Response.json(
            {
                "ingested": outcome.ingested,
                "generation": outcome.generation,
                "ticked": len(outcome.updates),
            }
        )

    async def _checkpoint(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        folded = await self.actor.checkpoint()
        return Response.json({"folded": folded})

    async def _monitor_create(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        payload = _body(request)
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise WireError("field 'kind' must be 'snapshot' or 'interval'")
        k = payload.get("k")
        if isinstance(k, bool) or not isinstance(k, int):
            raise WireError("field 'k' must be an integer")
        window = payload.get("window_seconds")
        if window is not None and (
            isinstance(window, bool) or not isinstance(window, (int, float))
        ):
            raise WireError("field 'window_seconds' must be a number")
        method = payload.get("method", "join")
        if not isinstance(method, str):
            raise WireError("field 'method' must be a string")
        monitor_id = self.actor.create_monitor(
            kind=kind,
            k=k,
            window_seconds=None if window is None else float(window),
            method=method,
        )
        return Response.json({"monitor_id": monitor_id}, status=202)

    async def _monitor_list(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        return Response.json({"monitors": self.actor.list_monitors()})

    async def _monitor_get(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        info = self.actor.monitor_info(params["monitor_id"])
        if info is None:
            return Response.error(
                404, f"unknown monitor {params['monitor_id']!r}"
            )
        return Response.json(info)

    async def _monitor_delete(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        if not self.actor.drop_monitor(params["monitor_id"]):
            return Response.error(
                404, f"unknown monitor {params['monitor_id']!r}"
            )
        return Response.json({"dropped": params["monitor_id"]})

    async def _monitor_tick(
        self, request: Request, params: Mapping[str, str]
    ) -> Response:
        payload = _body(request)
        t = payload.get("t")
        if isinstance(t, bool) or not isinstance(t, (int, float)):
            raise WireError("field 't' must be a number")
        update = await self.actor.tick_monitor(params["monitor_id"], float(t))
        return Response.json(encode_update(update))

    async def _monitor_stream(
        self, request: Request, params: Mapping[str, str]
    ) -> Union[Response, EventStream]:
        monitor_id = params["monitor_id"]
        if self.actor.monitor_info(monitor_id) is None:
            return Response.error(404, f"unknown monitor {monitor_id!r}")
        queue_text = request.params.get("queue")
        queue_size = self.config.sse_queue_size
        if queue_text is not None:
            try:
                queue_size = int(queue_text)
            except ValueError as error:
                raise WireError("query parameter 'queue' must be an integer") from error
        subscriber = self.actor.subscribe(monitor_id, queue_size=queue_size)
        heartbeat = self.config.sse_heartbeat_seconds

        async def frames() -> AsyncIterator[str]:
            try:
                while True:
                    try:
                        update = await asyncio.wait_for(
                            subscriber.queue.get(), timeout=heartbeat
                        )
                    except asyncio.TimeoutError:
                        # Idle stream: yield a comment frame.  Writing
                        # it to a disconnected client raises, tearing
                        # this generator down (and unsubscribing below)
                        # even when the monitor never ticks.
                        yield SSE_HEARTBEAT
                        continue
                    if update is None:
                        return
                    yield dumps(encode_update(update))
            finally:
                self.actor.unsubscribe(monitor_id, subscriber)

        return EventStream(frames=frames())


# ----------------------------------------------------------------------
# Request body decoding
# ----------------------------------------------------------------------


def _body(request: Request) -> dict[str, Any]:
    """The request's JSON object body (WireError on anything else)."""
    if not request.body:
        raise WireError("request body must be a JSON object")
    return loads(request.body)


def _decode_ingest(payload: Mapping[str, Any]) -> IngestBatch:
    """Decode a ``POST /ingest`` body into an :class:`IngestBatch`.

    Body shape (all fields optional, applied in this order)::

        {"records": [<record>...],      # closed records, wire-encoded
         "open": <record>,              # open one episode
         "extend": {"object_id": ..., "t_e": ...},
         "close": {"object_id": ..., "t_e": ...?},
         "tick_t": <float>}             # advance all standing monitors

    Raises:
        WireError: On unknown fields or bad shapes — unknown keys are
            rejected so a typo ("record") fails loudly instead of
            silently ingesting nothing.
    """
    known = {"records", "open", "extend", "close", "tick_t"}
    unknown = set(payload) - known
    if unknown:
        raise WireError(
            f"unknown ingest fields {sorted(unknown)!r}; expected {sorted(known)!r}"
        )
    records: list[TrackingRecord] = []
    raw_records = payload.get("records", [])
    if not isinstance(raw_records, list):
        raise WireError("field 'records' must be a list of encoded records")
    for raw in raw_records:
        if not isinstance(raw, Mapping):
            raise WireError(f"bad record payload {raw!r}")
        records.append(decode_record(raw))
    open_episode: Optional[TrackingRecord] = None
    raw_open = payload.get("open")
    if raw_open is not None:
        if not isinstance(raw_open, Mapping):
            raise WireError("field 'open' must be an encoded record")
        open_episode = decode_record(raw_open)
    extend = _decode_episode_op(payload.get("extend"), "extend", t_e_required=True)
    close = _decode_episode_op(payload.get("close"), "close", t_e_required=False)
    tick_t: Optional[float] = None
    raw_tick = payload.get("tick_t")
    if raw_tick is not None:
        if isinstance(raw_tick, bool) or not isinstance(raw_tick, (int, float)):
            raise WireError("field 'tick_t' must be a number")
        tick_t = float(raw_tick)
    return IngestBatch(
        records=tuple(records),
        open_episode=open_episode,
        extend=None if extend is None else (extend[0], _require_t_e(extend)),
        close=close,
        tick_t=tick_t,
    )


def _decode_episode_op(
    raw: Any, name: str, t_e_required: bool
) -> Optional[tuple[ObjectId, Optional[float]]]:
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise WireError(f"field {name!r} must be an object")
    object_id = raw.get("object_id")
    if isinstance(object_id, bool) or not isinstance(object_id, (str, int)):
        raise WireError(f"{name}.object_id must be a string or integer")
    t_e = raw.get("t_e")
    if t_e is None:
        if t_e_required:
            raise WireError(f"{name}.t_e is required")
        return (object_id, None)
    if isinstance(t_e, bool) or not isinstance(t_e, (int, float)):
        raise WireError(f"{name}.t_e must be a number")
    return (object_id, float(t_e))


def _require_t_e(op: tuple[ObjectId, Optional[float]]) -> float:
    t_e = op[1]
    assert t_e is not None  # _decode_episode_op enforced it
    return t_e


# ----------------------------------------------------------------------
# Threaded harness
# ----------------------------------------------------------------------


@dataclass
class ServerHandle:
    """A running server on its own thread — the synchronous harness.

    Tests, the benchmark and the CI smoke client are synchronous code;
    the handle boots a :class:`ServeApp` on a dedicated thread with its
    own event loop, blocks until the listener is bound, and tears the
    whole stack down (graceful: drain + checkpoint) on :meth:`stop` /
    context-manager exit::

        with ServerHandle(engine) as handle:
            client = ServeClient(handle.base_url)
            client.health()
    """

    engine: ServableEngine
    config: ServeConfig = field(default_factory=ServeConfig)
    _thread: Optional[threading.Thread] = None
    _started: threading.Event = field(default_factory=threading.Event)
    _loop: Optional[asyncio.AbstractEventLoop] = None
    _shutdown: Optional["asyncio.Event"] = None
    _app: Optional[ServeApp] = None
    _error: Optional[BaseException] = None

    def start(self) -> "ServerHandle":
        """Boot the server thread; returns once the port is bound.

        Raises:
            RuntimeError: If the server failed to boot (the underlying
                error is chained).
        """
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if not self._started.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def stop(self) -> None:
        """Graceful shutdown; blocks until the thread exits (idempotent)."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        app = self._app
        if app is None:
            raise RuntimeError("server is not started")
        return app.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.config.host}:{self.port}"

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # pragma: no cover - boot failures
            self._error = error
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._app = ServeApp(self.engine, self.config)
        try:
            await self._app.start()
        except BaseException as error:
            self._error = error
            self._started.set()
            return
        self._started.set()
        await self._shutdown.wait()
        await self._app.stop()
