"""Async job bookkeeping for ``POST /queries?sync=false``.

A job is one deferred query: submitted, executed through the engine
actor in queue order, and collected later via ``GET /jobs/{id}``.  The
store is loop-confined (only the event-loop thread touches it), so plain
dicts suffice — no locks, no persistence: jobs describe *in-flight* work
and die with the process, while the data they query is what the durable
storage layer protects.

Job ids are sequential (``job-1``, ``job-2``, …) rather than random —
the repo-wide unseeded-RNG lint applies to the service too, and a
deterministic id stream makes request logs and tests reproducible.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["DEFAULT_MAX_TERMINAL", "Job", "JobStore", "JOB_STATES"]

#: The job lifecycle, in order.  ``pending`` jobs are queued behind the
#: actor; ``done``/``error`` are terminal.
JOB_STATES = ("pending", "done", "error")

#: How many settled (done/error) jobs a store retains before evicting
#: the oldest — a long-running server would otherwise hold every
#: deferred query's encoded result forever.  Pending jobs are never
#: evicted: their work is still queued behind the actor.
DEFAULT_MAX_TERMINAL = 1024


@dataclass(slots=True)
class Job:
    """One deferred request and its outcome."""

    job_id: str
    kind: str
    status: str = "pending"
    result: Optional[dict[str, Any]] = None
    error: Optional[str] = None

    def as_dict(self) -> dict[str, Any]:
        """The ``GET /jobs/{id}`` response body."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


@dataclass(slots=True)
class JobStore:
    """All jobs of one server process, keyed by id.

    The store is bounded: at most ``max_terminal`` settled jobs are
    retained, oldest-settled evicted first (their ``GET /jobs/{id}``
    turns 404, like an unknown id).  Pending jobs are never evicted.
    """

    max_terminal: int = DEFAULT_MAX_TERMINAL
    _jobs: dict[str, Job] = field(default_factory=dict)
    _ids: "itertools.count[int]" = field(
        default_factory=lambda: itertools.count(1)
    )
    _terminal: "deque[str]" = field(default_factory=deque)

    def __len__(self) -> int:
        return len(self._jobs)

    def create(self, kind: str) -> Job:
        """Register a new pending job and return it."""
        job = Job(job_id=f"job-{next(self._ids)}", kind=kind)
        self._jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        return self._jobs.get(job_id)

    def finish(self, job_id: str, result: dict[str, Any]) -> None:
        """Mark a job done with its encoded result payload."""
        job = self._require(job_id)
        job.status = "done"
        job.result = result
        self._settle(job)

    def fail(self, job_id: str, error: str) -> None:
        """Mark a job failed with a human-readable reason."""
        job = self._require(job_id)
        job.status = "error"
        job.error = error
        self._settle(job)

    def counts(self) -> dict[str, int]:
        """``{status: count}`` over every known job (health endpoint)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def _settle(self, job: Job) -> None:
        """Record a terminal transition; evict beyond ``max_terminal``."""
        self._terminal.append(job.job_id)
        while len(self._terminal) > self.max_terminal:
            self._jobs.pop(self._terminal.popleft(), None)
