"""The scripted smoke client CI runs against a live server.

``python -m repro.serve.smoke`` boots an in-process server on an
ephemeral port (tiny synthetic venue, memory storage), then walks the
endpoint catalogue end to end exactly as a deployment probe would:
health, ingest (batch + open/extend/close episode), sync and deferred
queries, metrics, a standing monitor with a tick, and the SSE stream —
asserting on every response.  Exits non-zero on the first failure, so
the CI step is a plain command with no harness around it.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Sequence

from ..core.monitor import TopKUpdate
from ..core.queries import IntervalTopKQuery, SnapshotTopKQuery
from ..datagen.config import SyntheticConfig
from ..tracking.records import TrackingRecord
from .app import ServeConfig, ServerHandle
from .client import ServeClient
from .scenario import build_engine, build_venue, record_stream
from .wire import QuerySpec

__all__ = ["main"]

_SMOKE_CONFIG = SyntheticConfig(
    num_objects=12,
    duration=600.0,
    rooms_per_side=4,
    poi_count=10,
    seed=11,
)


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the smoke session; returns 0 on success."""
    venue = build_venue(_SMOKE_CONFIG)
    engine = build_engine(venue)
    records = list(record_stream(_SMOKE_CONFIG))
    _check(len(records) > 10, "smoke workload produced too few records")
    t_mid = _SMOKE_CONFIG.duration / 2.0

    with ServerHandle(engine, ServeConfig()) as handle:
        client = ServeClient(handle.base_url)

        health = client.health()
        _check(health["live"] is True, f"engine not live: {health}")
        _check(health["generation"] == 0, f"unexpected generation: {health}")

        outcome = client.ingest(records=records)
        _check(
            outcome["ingested"] == len(records),
            f"ingest count mismatch: {outcome}",
        )

        result = client.query(
            QuerySpec(query=SnapshotTopKQuery(t=t_mid, k=3))
        )
        _check(len(result) == 3, f"snapshot top-k size: {len(result)}")

        job_id = client.submit_query(
            QuerySpec(
                query=IntervalTopKQuery(t_start=0.0, t_end=t_mid, k=3),
                method="iterative",
            )
        )
        deferred = client.wait_job(job_id)
        _check(len(deferred) == 3, f"deferred top-k size: {len(deferred)}")

        # Open-episode lifecycle through the same ingest seam.
        last_t = max(record.t_e for record in records)
        device = records[0].device_id
        open_record = TrackingRecord(
            record_id=max(r.record_id for r in records) + 1,
            object_id="smoke-visitor",
            device_id=device,
            t_s=last_t + 1.0,
            t_e=last_t + 1.0,
        )
        client.ingest(open_episode=open_record)
        client.ingest(extend=("smoke-visitor", last_t + 5.0))
        client.ingest(close=("smoke-visitor", last_t + 6.0))

        monitor_id = client.create_monitor(kind="snapshot", k=3)
        streamed: list[TopKUpdate] = []

        def consume() -> None:
            streamed.extend(client.stream(monitor_id, max_events=2))

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        ticked = [
            client.tick_monitor(monitor_id, t)
            for t in (t_mid, t_mid + 30.0)
        ]
        _check(
            len(ticked[0].result) == 3, f"monitor tick size: {ticked[0]}"
        )
        consumer.join(timeout=30.0)
        _check(not consumer.is_alive(), "SSE consumer did not finish")
        _check(len(streamed) == 2, f"streamed {len(streamed)} != 2 updates")
        for expected, actual in itertools.zip_longest(ticked, streamed):
            _check(
                expected == actual,
                f"SSE update diverged from tick response:\n{expected}\n{actual}",
            )

        metrics = client.metrics()
        _check("engine" in metrics and "obs" in metrics, f"metrics: {metrics}")
        _check(
            metrics["monitors"][0]["updates_published"] == 2,
            f"monitor accounting: {metrics['monitors']}",
        )

        folded = client.checkpoint()
        _check(folded >= 0, f"checkpoint folded {folded} < 0")

    print("repro.serve smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
