"""``python -m repro.serve`` — boot the service from the command line.

The venue is derived deterministically from the synthetic-workload flags
(see :mod:`repro.serve.scenario`), so restarting with the same flags and
the same ``--storage`` path recovers the durable rows into an identical
venue and answers queries bit-identically to the uninterrupted process —
the recovery demo in ``tests/serve/test_recovery.py`` exercises exactly
this entrypoint.

Examples::

    python -m repro.serve --port 8080 --storage /tmp/venue.sqlite
    python -m repro.serve --shards 4 --storage /tmp/venue-shards/

The process prints one line once the listener is bound::

    repro.serve listening on http://127.0.0.1:8080

and shuts down gracefully (drain + checkpoint) on SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
from typing import Optional, Sequence

from ..datagen.config import SyntheticConfig
from .app import ServeApp, ServeConfig
from .scenario import build_engine, build_venue

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve top-k indoor POI queries over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--storage",
        default=None,
        help="durability root: sqlite file (1 shard) or directory (N shards)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, help="engine shard count"
    )
    venue = parser.add_argument_group("venue (must match across restarts)")
    venue.add_argument(
        "--rooms", type=int, default=6, help="office rooms per hallway side"
    )
    venue.add_argument(
        "--poi-count", type=int, default=20, help="POIs carved from the rooms"
    )
    venue.add_argument(
        "--seed", type=int, default=11, help="POI partition seed"
    )
    venue.add_argument(
        "--detection-range",
        type=float,
        default=1.5,
        help="device detection radius (m)",
    )
    venue.add_argument(
        "--hallway-spacing",
        type=float,
        default=12.0,
        help="hallway reader spacing (m)",
    )
    venue.add_argument(
        "--v-max", type=float, default=1.1, help="max indoor speed (m/s)"
    )
    venue.add_argument(
        "--detection-slack",
        type=float,
        default=None,
        help="detection latency (s); default 2 * sampling interval",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> SyntheticConfig:
    return SyntheticConfig(
        rooms_per_side=args.rooms,
        poi_count=args.poi_count,
        seed=args.seed,
        detection_range=args.detection_range,
        hallway_spacing=args.hallway_spacing,
        speed=args.v_max,
    )


async def _serve(args: argparse.Namespace) -> None:
    venue = build_venue(
        _config_from_args(args), detection_slack=args.detection_slack
    )
    engine = build_engine(venue, storage=args.storage, shards=args.shards)
    app = ServeApp(engine, ServeConfig(host=args.host, port=args.port))
    await app.start()
    # The port line is the subprocess contract: tests and scripts bind
    # port 0 and discover the ephemeral port from this exact prefix.
    print(
        f"repro.serve listening on http://{args.host}:{app.port}", flush=True
    )
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, shutdown.set)
    await shutdown.wait()
    print("repro.serve shutting down (drain + checkpoint)", flush=True)
    await app.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse flags, boot the service, block until a signal."""
    args = _parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
