"""The JSON wire layer: versioned codecs for the service's payloads.

Every message the service reads or writes goes through one of the codecs
here, so the HTTP handlers never touch raw dicts and the wire shape is
versioned in exactly one place.  Each encoded payload carries::

    {"wire_version": 1, "kind": "<payload kind>", ...fields...}

and every decoder validates the envelope before touching the fields, so
a client speaking a future incompatible revision fails loudly with a
:class:`WireError` instead of being half-understood.

Float fidelity
--------------

Timestamps and flows must survive the wire **bit-identically** — the
service's contract is that a query answered over HTTP equals the same
query answered in-process, and flows are compared exactly in tests.  The
codecs rely on the stdlib :mod:`json` round trip: ``json.dumps`` emits
floats via ``repr`` (the shortest digit string that parses back to the
same IEEE-754 double since Python 3.1) and ``json.loads`` parses with
``float``, so ``float(repr(x)) == x`` bit for bit, ``-0.0`` included.
Non-finite values are rejected in both directions — ``Infinity``/``NaN``
are not valid JSON, and no tracking timestamp or flow is legitimately
non-finite.  The property tests in ``tests/serve/test_wire.py`` pin the
round trip down to the byte pattern of the doubles.

Identifiers (object, device) are restricted to ``str`` and ``int`` on the
wire; other hashables the in-memory types tolerate have no canonical JSON
form.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Mapping, Union

from ..core.monitor import TopKUpdate
from ..core.queries import (
    IntervalTopKQuery,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
)
from ..geometry import Point, Polygon
from ..indoor.poi import Poi
from ..tracking.records import TrackingRecord

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "QuerySpec",
    "WireError",
    "decode_poi",
    "decode_query",
    "decode_record",
    "decode_result",
    "decode_update",
    "dumps",
    "encode_poi",
    "encode_query",
    "encode_record",
    "encode_result",
    "encode_update",
    "loads",
]

#: Version stamped into every wire payload.  Bump on any incompatible
#: field change; decoders reject other versions.
WIRE_SCHEMA_VERSION = 1

_QUERY_METHODS = ("join", "iterative")


class WireError(ValueError):
    """A payload failed wire validation (envelope, types, or ranges)."""


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One decoded ``POST /queries`` request: the query plus its strategy.

    Attributes:
        query: The paper query — Problem 1
            (:class:`~repro.core.queries.SnapshotTopKQuery`) or Problem 2
            (:class:`~repro.core.queries.IntervalTopKQuery`).
        method: ``"join"`` or ``"iterative"`` (validated at decode time).
    """

    query: Union[SnapshotTopKQuery, IntervalTopKQuery]
    method: str = "join"

    def __post_init__(self) -> None:
        if self.method not in _QUERY_METHODS:
            raise WireError(
                f"unknown query method {self.method!r}; "
                f"expected one of {_QUERY_METHODS}"
            )


# ----------------------------------------------------------------------
# Serialization helpers
# ----------------------------------------------------------------------


def dumps(payload: Mapping[str, Any]) -> str:
    """Serialize an encoded payload to canonical JSON text.

    Keys are sorted and separators compact, so identical payloads always
    produce identical bytes (SSE frames and test assertions rely on it).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def loads(text: Union[str, bytes]) -> dict[str, Any]:
    """Parse JSON text into a payload mapping.

    Raises:
        WireError: If the text is not valid JSON or not a JSON object.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise WireError(f"invalid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise WireError("payload must be a JSON object")
    return payload


def _envelope(kind: str) -> dict[str, Any]:
    return {"wire_version": WIRE_SCHEMA_VERSION, "kind": kind}


def _check_envelope(payload: Mapping[str, Any], kind: str) -> None:
    if not isinstance(payload, Mapping):
        raise WireError(f"{kind} payload must be a JSON object")
    version = payload.get("wire_version")
    if version != WIRE_SCHEMA_VERSION:
        raise WireError(
            f"unsupported wire_version {version!r} "
            f"(this service speaks {WIRE_SCHEMA_VERSION})"
        )
    actual = payload.get("kind")
    if actual != kind:
        raise WireError(f"expected kind {kind!r}, got {actual!r}")


def _wire_float(payload: Mapping[str, Any], field: str) -> float:
    value = payload.get(field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"field {field!r} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise WireError(f"field {field!r} must be finite, got {value!r}")
    return value


def _wire_int(payload: Mapping[str, Any], field: str) -> int:
    value = payload.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"field {field!r} must be an integer, got {value!r}")
    return value


def _wire_str(payload: Mapping[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str):
        raise WireError(f"field {field!r} must be a string, got {value!r}")
    return value


def _wire_id(value: Any, field: str) -> Union[str, int]:
    """Validate an object/device identifier for the wire (str or int)."""
    if isinstance(value, bool) or not isinstance(value, (str, int)):
        raise WireError(
            f"field {field!r} must be a string or integer identifier, "
            f"got {value!r}"
        )
    return value


def _require_finite(value: float, field: str) -> float:
    if not math.isfinite(value):
        raise WireError(f"field {field!r} must be finite, got {value!r}")
    return value


# ----------------------------------------------------------------------
# Tracking records
# ----------------------------------------------------------------------


def encode_record(record: TrackingRecord) -> dict[str, Any]:
    """One OTT row as a wire payload (``kind="record"``)."""
    payload = _envelope("record")
    payload.update(
        record_id=record.record_id,
        object_id=_wire_id(record.object_id, "object_id"),
        device_id=_wire_id(record.device_id, "device_id"),
        t_s=_require_finite(record.t_s, "t_s"),
        t_e=_require_finite(record.t_e, "t_e"),
    )
    return payload


def decode_record(payload: Mapping[str, Any]) -> TrackingRecord:
    """Rebuild a :class:`TrackingRecord` from :func:`encode_record` output.

    Raises:
        WireError: On a bad envelope, field types, or an inverted episode
            (``t_e < t_s`` — re-raised from the record's own validation).
    """
    _check_envelope(payload, "record")
    try:
        return TrackingRecord(
            record_id=_wire_int(payload, "record_id"),
            object_id=_wire_id(payload.get("object_id"), "object_id"),
            device_id=_wire_id(payload.get("device_id"), "device_id"),
            t_s=_wire_float(payload, "t_s"),
            t_e=_wire_float(payload, "t_e"),
        )
    except WireError:
        raise
    except ValueError as error:
        raise WireError(str(error)) from error


# ----------------------------------------------------------------------
# Query specs
# ----------------------------------------------------------------------


def encode_query(spec: QuerySpec) -> dict[str, Any]:
    """A query spec as a wire payload (``kind="query"``)."""
    payload = _envelope("query")
    query = spec.query
    if isinstance(query, SnapshotTopKQuery):
        payload.update(mode="snapshot", t=query.t, k=query.k)
    else:
        payload.update(
            mode="interval",
            t_start=query.t_start,
            t_end=query.t_end,
            k=query.k,
        )
    payload["method"] = spec.method
    return payload


def decode_query(payload: Mapping[str, Any]) -> QuerySpec:
    """Rebuild a :class:`QuerySpec` from :func:`encode_query` output.

    Raises:
        WireError: On a bad envelope, an unknown ``mode``/``method``, a
            non-positive ``k`` or an inverted window (re-raised from the
            query dataclasses' own validation).
    """
    _check_envelope(payload, "query")
    mode = payload.get("mode")
    method = payload.get("method", "join")
    if not isinstance(method, str):
        raise WireError(f"field 'method' must be a string, got {method!r}")
    try:
        if mode == "snapshot":
            query: Union[SnapshotTopKQuery, IntervalTopKQuery] = (
                SnapshotTopKQuery(
                    t=_wire_float(payload, "t"), k=_wire_int(payload, "k")
                )
            )
        elif mode == "interval":
            query = IntervalTopKQuery(
                t_start=_wire_float(payload, "t_start"),
                t_end=_wire_float(payload, "t_end"),
                k=_wire_int(payload, "k"),
            )
        else:
            raise WireError(
                f"unknown query mode {mode!r}; expected 'snapshot' or "
                "'interval'"
            )
        return QuerySpec(query=query, method=method)
    except WireError:
        raise
    except ValueError as error:
        raise WireError(str(error)) from error


# ----------------------------------------------------------------------
# POIs, results and updates
# ----------------------------------------------------------------------


def encode_poi(poi: Poi) -> dict[str, Any]:
    """A POI — id, room, labels and polygon vertices (``kind="poi"``)."""
    payload = _envelope("poi")
    payload.update(
        poi_id=poi.poi_id,
        room_id=poi.room_id,
        name=poi.name,
        category=poi.category,
        polygon=[[vertex.x, vertex.y] for vertex in poi.polygon.vertices],
    )
    return payload


def decode_poi(payload: Mapping[str, Any]) -> Poi:
    """Rebuild a :class:`Poi` from :func:`encode_poi` output."""
    _check_envelope(payload, "poi")
    vertices = payload.get("polygon")
    if not isinstance(vertices, list) or len(vertices) < 3:
        raise WireError("field 'polygon' must be a list of >= 3 [x, y] pairs")
    points = []
    for pair in vertices:
        if (
            not isinstance(pair, list)
            or len(pair) != 2
            or any(
                isinstance(value, bool) or not isinstance(value, (int, float))
                for value in pair
            )
        ):
            raise WireError(f"bad polygon vertex {pair!r}; expected [x, y]")
        points.append(
            Point(
                _require_finite(float(pair[0]), "polygon.x"),
                _require_finite(float(pair[1]), "polygon.y"),
            )
        )
    return Poi(
        poi_id=_wire_str(payload, "poi_id"),
        polygon=Polygon(points),
        room_id=_wire_str(payload, "room_id"),
        name=_wire_str(payload, "name"),
        category=_wire_str(payload, "category"),
    )


def encode_result(result: TopKResult) -> dict[str, Any]:
    """A ranked top-k result (``kind="topk_result"``), POIs inlined."""
    payload = _envelope("topk_result")
    payload["entries"] = [
        {"poi": encode_poi(entry.poi), "flow": _require_finite(entry.flow, "flow")}
        for entry in result.entries
    ]
    return payload


def decode_result(payload: Mapping[str, Any]) -> TopKResult:
    """Rebuild a :class:`TopKResult` from :func:`encode_result` output."""
    _check_envelope(payload, "topk_result")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise WireError("field 'entries' must be a list")
    ranked = []
    for entry in entries:
        if not isinstance(entry, Mapping) or "poi" not in entry:
            raise WireError(f"bad result entry {entry!r}")
        ranked.append(
            RankedPoi(
                poi=decode_poi(entry["poi"]),
                flow=_wire_float(entry, "flow"),
            )
        )
    return TopKResult(entries=tuple(ranked))


def encode_update(update: TopKUpdate) -> dict[str, Any]:
    """A monitor tick — result plus the change sets (``kind="topk_update"``)."""
    payload = _envelope("topk_update")
    payload.update(
        t=_require_finite(update.t, "t"),
        result=encode_result(update.result),
        entered=list(update.entered),
        exited=list(update.exited),
        rank_changes=[list(change) for change in update.rank_changes],
        changed=update.changed,
    )
    return payload


def decode_update(payload: Mapping[str, Any]) -> TopKUpdate:
    """Rebuild a :class:`TopKUpdate` from :func:`encode_update` output."""
    _check_envelope(payload, "topk_update")
    entered = payload.get("entered")
    exited = payload.get("exited")
    changes = payload.get("rank_changes")
    if not isinstance(entered, list) or not all(
        isinstance(poi_id, str) for poi_id in entered
    ):
        raise WireError("field 'entered' must be a list of POI ids")
    if not isinstance(exited, list) or not all(
        isinstance(poi_id, str) for poi_id in exited
    ):
        raise WireError("field 'exited' must be a list of POI ids")
    if not isinstance(changes, list):
        raise WireError("field 'rank_changes' must be a list")
    rank_changes = []
    for change in changes:
        if (
            not isinstance(change, list)
            or len(change) != 3
            or not isinstance(change[0], str)
            or any(
                isinstance(rank, bool) or not isinstance(rank, int)
                for rank in change[1:]
            )
        ):
            raise WireError(
                f"bad rank change {change!r}; expected [poi_id, prev, new]"
            )
        rank_changes.append((change[0], change[1], change[2]))
    result = payload.get("result")
    if not isinstance(result, Mapping):
        raise WireError("field 'result' must be an encoded topk_result")
    return TopKUpdate(
        t=_wire_float(payload, "t"),
        result=decode_result(result),
        entered=tuple(entered),
        exited=tuple(exited),
        rank_changes=tuple(rank_changes),
    )
