"""Venue construction for the service: floor plan, devices, POIs, engine.

A server process needs the same deterministic venue on every boot — the
durable storage layer persists only the *tracking rows*, so recovery
after a crash re-derives the floor plan, deployment and POI universe
from configuration and replays the rows into it.  This module owns that
derivation: :func:`build_venue` maps a
:class:`~repro.datagen.config.SyntheticConfig` to the exact
office-building venue the synthetic generator walks (same builders, same
seed), so a restarted ``python -m repro.serve`` with the same flags
answers queries bit-identically to the uninterrupted process.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from ..core.coordinator import ShardedFlowEngine
from ..core.engine import LiveFlowEngine
from ..datagen.config import SyntheticConfig
from ..datagen.stream import stream_synthetic_records
from ..indoor.builders import (
    deploy_office_devices,
    office_building,
    partition_rooms_into_pois,
)
from ..indoor.devices import Deployment
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi
from ..storage import SQLiteBackend
from ..tracking.records import TrackingRecord
from ..tracking.table import LiveTrackingTable
from .actor import ServableEngine

__all__ = ["Venue", "build_engine", "build_venue", "record_stream"]


@dataclass(frozen=True)
class Venue:
    """One servable indoor venue, fully derived from configuration."""

    floorplan: FloorPlan
    deployment: Deployment
    pois: list[Poi]
    v_max: float
    detection_slack: float
    config: SyntheticConfig


def build_venue(
    config: SyntheticConfig, detection_slack: Optional[float] = None
) -> Venue:
    """The office venue the synthetic workload of ``config`` inhabits.

    Deterministic in ``config``: two processes given equal configs build
    identical floor plans, deployments and POI partitions, which is what
    lets a restarted server recover storage rows into the same geometry.

    Args:
        config: The synthetic workload parameters (venue shape, detection
            range, POI count and seed are what matter here).
        detection_slack: Detection latency passed to the engine; defaults
            to ``2 * config.sampling_interval``, the sound setting for
            the generator's sampled detection (see
            :class:`~repro.core.engine.FlowEngine`).
    """
    plan = office_building(rooms_per_side=config.rooms_per_side)
    deployment = deploy_office_devices(
        plan,
        detection_range=config.detection_range,
        hallway_spacing=config.hallway_spacing,
    )
    pois = partition_rooms_into_pois(
        plan, count=config.poi_count, seed=config.seed
    )
    slack = (
        2.0 * config.sampling_interval
        if detection_slack is None
        else detection_slack
    )
    return Venue(
        floorplan=plan,
        deployment=deployment,
        pois=pois,
        v_max=config.v_max,
        detection_slack=slack,
        config=config,
    )


def build_engine(
    venue: Venue,
    storage: Optional[Union[str, Path]] = None,
    shards: int = 1,
) -> ServableEngine:
    """A live engine for ``venue``, optionally durable, optionally sharded.

    Args:
        venue: The venue to serve.
        storage: Durability root — a SQLite file path for one shard, a
            directory (one store per shard) for many.  ``None`` serves
            from memory only.  A populated store is **recovered**: its
            rows are replayed into the fresh engine before the first
            request.
        shards: Shard count; ``1`` builds a
            :class:`~repro.core.engine.LiveFlowEngine`, more a
            :class:`~repro.core.coordinator.ShardedFlowEngine` with
            hash-partitioned objects.

    Raises:
        ValueError: If ``shards < 1``.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    if shards == 1:
        backend = None if storage is None else SQLiteBackend(Path(storage))
        return LiveFlowEngine(
            venue.floorplan,
            venue.deployment,
            venue.pois,
            v_max=venue.v_max,
            detection_slack=venue.detection_slack,
            storage=backend,
        )
    return ShardedFlowEngine(
        venue.floorplan,
        venue.deployment,
        LiveTrackingTable(),
        venue.pois,
        v_max=venue.v_max,
        num_shards=shards,
        storage=None if storage is None else Path(storage),
        detection_slack=venue.detection_slack,
    )


def record_stream(config: SyntheticConfig) -> Iterator[TrackingRecord]:
    """The synthetic workload's OTT rows, in ingest order (passthrough)."""
    return stream_synthetic_records(config)
