"""repro.serve — the zero-dependency query/ingest service.

The serving layer of the reproduction (ROADMAP: "Serve it"): an
asyncio HTTP/1.1 front over the flow engines, stdlib-only end to end.
Four layers, smallest on top:

* :mod:`repro.serve.wire` — versioned JSON codecs for records, query
  specs, results and monitor updates (bit-identical float round trips);
* :mod:`repro.serve.actor` — the engine actor: one single-writer task
  owning the engine, fed by a queue, so the lock-free engine serves
  concurrent HTTP traffic with deterministic ingest/query ordering;
* :mod:`repro.serve.http` / :mod:`repro.serve.app` — the hand-rolled
  HTTP server, the endpoint catalogue and the threaded
  :class:`~repro.serve.app.ServerHandle` harness;
* :mod:`repro.serve.client` / :mod:`repro.serve.scenario` — the blocking
  urllib client and the deterministic venue builder behind
  ``python -m repro.serve``.

Quickstart::

    from repro.serve import QuerySpec, ServeClient, ServerHandle
    from repro.serve.scenario import build_engine, build_venue
    from repro.datagen.config import SyntheticConfig
    from repro.core.queries import SnapshotTopKQuery

    venue = build_venue(SyntheticConfig(num_objects=40))
    with ServerHandle(build_engine(venue)) as handle:
        client = ServeClient(handle.base_url)
        client.ingest(records=list_of_records)
        result = client.query(QuerySpec(SnapshotTopKQuery(t=600.0, k=5)))

See ``docs/serving.md`` for the endpoint catalogue, the wire schema and
the SSE semantics.
"""

from .actor import EngineActor, IngestBatch, IngestOutcome, ServableEngine, Subscriber
from .app import ServeApp, ServeConfig, ServerHandle
from .client import ServeClient, ServeHttpError
from .jobs import Job, JobStore
from .scenario import Venue, build_engine, build_venue, record_stream
from .wire import (
    WIRE_SCHEMA_VERSION,
    QuerySpec,
    WireError,
    decode_poi,
    decode_query,
    decode_record,
    decode_result,
    decode_update,
    dumps,
    encode_poi,
    encode_query,
    encode_record,
    encode_result,
    encode_update,
    loads,
)

__all__ = [
    "EngineActor",
    "IngestBatch",
    "IngestOutcome",
    "Job",
    "JobStore",
    "QuerySpec",
    "ServableEngine",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeHttpError",
    "ServerHandle",
    "Subscriber",
    "Venue",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "build_engine",
    "build_venue",
    "decode_poi",
    "decode_query",
    "decode_record",
    "decode_result",
    "decode_update",
    "dumps",
    "encode_poi",
    "encode_query",
    "encode_record",
    "encode_result",
    "encode_update",
    "loads",
    "record_stream",
]
