"""A blocking client for the service — urllib only, no dependencies.

The counterpart of the server's zero-dependency constraint: tests, the
benchmark and the CI smoke job talk to a running server through this
thin :mod:`urllib.request` wrapper instead of requiring ``requests`` or
``httpx``.  Methods mirror the endpoint catalogue one-to-one and speak
the :mod:`repro.serve.wire` codecs, returning *decoded* domain objects
(:class:`~repro.core.queries.TopKResult`,
:class:`~repro.core.monitor.TopKUpdate`) where the wire defines them.

Errors: any non-2xx response raises :class:`ServeHttpError` carrying the
status and the server's JSON error message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence
from urllib.error import HTTPError
from urllib.request import Request as UrllibRequest
from urllib.request import urlopen

from ..core.monitor import TopKUpdate
from ..core.queries import TopKResult
from ..tracking.records import ObjectId, TrackingRecord
from .wire import (
    QuerySpec,
    decode_result,
    decode_update,
    dumps,
    encode_query,
    encode_record,
    loads,
)

__all__ = ["ServeClient", "ServeHttpError"]

_DEFAULT_TIMEOUT = 30.0


class ServeHttpError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass(frozen=True, slots=True)
class ServeClient:
    """One server's base URL plus a request timeout."""

    base_url: str
    timeout: float = _DEFAULT_TIMEOUT

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Any]:
        body = None if payload is None else dumps(payload).encode("utf-8")
        request = UrllibRequest(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return loads(response.read())
        except HTTPError as error:
            raw = error.read()
            try:
                decoded = json.loads(raw)
                message = decoded.get("message", raw.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = raw.decode("utf-8", "replace")
            raise ServeHttpError(error.code, str(message)) from error

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def checkpoint(self) -> int:
        """``POST /checkpoint``; returns the folded mutation count."""
        outcome = self._request("POST", "/checkpoint", {})
        return int(outcome["folded"])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, spec: QuerySpec) -> TopKResult:
        """``POST /queries`` (synchronous): the decoded top-k result."""
        return decode_result(self._request("POST", "/queries", encode_query(spec)))

    def submit_query(self, spec: QuerySpec) -> str:
        """``POST /queries?sync=false``: returns the job id."""
        outcome = self._request(
            "POST", "/queries?sync=false", encode_query(spec)
        )
        return str(outcome["job_id"])

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/{id}``: the raw job payload."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(self, job_id: str, attempts: int = 200) -> TopKResult:
        """Poll a deferred query until it settles; decode its result.

        Polling is bounded by ``attempts`` round trips (no sleeps — each
        poll is a full HTTP request, and the actor drains quickly).

        Raises:
            ServeHttpError: If the job failed server-side (status 500
                surrogate carrying the job's error message).
            TimeoutError: If the job did not settle within ``attempts``.
        """
        for _ in range(attempts):
            payload = self.job(job_id)
            if payload["status"] == "done":
                return decode_result(payload["result"])
            if payload["status"] == "error":
                raise ServeHttpError(500, str(payload.get("error")))
        raise TimeoutError(f"job {job_id} did not settle in {attempts} polls")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        records: Sequence[TrackingRecord] = (),
        open_episode: Optional[TrackingRecord] = None,
        extend: Optional[tuple[ObjectId, float]] = None,
        close: Optional[tuple[ObjectId, Optional[float]]] = None,
        tick_t: Optional[float] = None,
    ) -> dict[str, Any]:
        """``POST /ingest``: one atomic batch of ingest operations."""
        payload: dict[str, Any] = {}
        if records:
            payload["records"] = [encode_record(record) for record in records]
        if open_episode is not None:
            payload["open"] = encode_record(open_episode)
        if extend is not None:
            payload["extend"] = {"object_id": extend[0], "t_e": extend[1]}
        if close is not None:
            close_payload: dict[str, Any] = {"object_id": close[0]}
            if close[1] is not None:
                close_payload["t_e"] = close[1]
            payload["close"] = close_payload
        if tick_t is not None:
            payload["tick_t"] = tick_t
        return self._request("POST", "/ingest", payload)

    # ------------------------------------------------------------------
    # Monitors
    # ------------------------------------------------------------------

    def create_monitor(
        self,
        kind: str,
        k: int,
        window_seconds: Optional[float] = None,
        method: str = "join",
    ) -> str:
        """``POST /monitors``: returns the new monitor id."""
        payload: dict[str, Any] = {"kind": kind, "k": k, "method": method}
        if window_seconds is not None:
            payload["window_seconds"] = window_seconds
        outcome = self._request("POST", "/monitors", payload)
        return str(outcome["monitor_id"])

    def monitor(self, monitor_id: str) -> dict[str, Any]:
        """``GET /monitors/{id}``."""
        return self._request("GET", f"/monitors/{monitor_id}")

    def monitors(self) -> list[dict[str, Any]]:
        """``GET /monitors``."""
        outcome = self._request("GET", "/monitors")
        monitors = outcome["monitors"]
        assert isinstance(monitors, list)
        return monitors

    def drop_monitor(self, monitor_id: str) -> None:
        """``DELETE /monitors/{id}``."""
        self._request("DELETE", f"/monitors/{monitor_id}")

    def tick_monitor(self, monitor_id: str, t: float) -> TopKUpdate:
        """``POST /monitors/{id}/tick``: the decoded update."""
        return decode_update(
            self._request("POST", f"/monitors/{monitor_id}/tick", {"t": t})
        )

    def stream(
        self,
        monitor_id: str,
        max_events: int,
        queue: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[TopKUpdate]:
        """``GET /monitors/{id}/stream``: yield up to ``max_events`` updates.

        Blocks reading the SSE feed; stops after ``max_events`` events,
        on server shutdown, or on monitor deletion.  Call it from a
        thread when the same process also drives ticks.
        """
        path = f"/monitors/{monitor_id}/stream"
        if queue is not None:
            path += f"?queue={queue}"
        request = UrllibRequest(f"{self.base_url}{path}", method="GET")
        seen = 0
        with urlopen(
            request, timeout=self.timeout if timeout is None else timeout
        ) as response:
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n")
                if not line.startswith("data: "):
                    continue
                yield decode_update(loads(line[len("data: ") :]))
                seen += 1
                if seen >= max_events:
                    return
