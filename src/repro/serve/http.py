"""A minimal asyncio HTTP/1.1 server — stdlib only, no frameworks.

The service's zero-dependency constraint rules out aiohttp/uvicorn, and
the stdlib ``http.server`` is thread-per-request and cannot host the SSE
streams the monitors need.  So this module hand-rolls the small HTTP
subset the service actually speaks on top of
:func:`asyncio.start_server`:

* one request per connection (``Connection: close``) — the service's
  clients are batch scripts and dashboards, not byte-shaving proxies, so
  keep-alive bookkeeping buys nothing here;
* JSON request/response bodies, sized by ``Content-Length`` (no chunked
  request parsing);
* long-lived ``text/event-stream`` responses for ``GET
  /monitors/{id}/stream``, written frame by frame until the client
  disconnects or the server shuts down.

Routing is a list of ``(method, compiled path regex, handler)`` rules;
named groups in the pattern become the handler's path parameters.  Every
dispatch is timed into a per-route ``serve.latency.<route>`` histogram
(when :mod:`repro.obs` is enabled), which is what ``GET /metrics`` and
the serve benchmark export.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Mapping, Optional, Union
from urllib.parse import parse_qsl, unquote

from ..obs import counter, histogram, obs_enabled
from .wire import dumps

__all__ = [
    "EventStream",
    "HttpServer",
    "Request",
    "Response",
    "Route",
    "Router",
    "SSE_HEARTBEAT",
]

#: The SSE comment frame handlers yield to keep quiet streams honest:
#: clients ignore comment lines, but writing one to a dead socket fails,
#: which is how idle stream connections get reaped (see ``ServeApp``).
SSE_HEARTBEAT = ": heartbeat"

#: Request line + headers may not exceed this many bytes.
MAX_HEADER_BYTES = 64 * 1024

#: Request bodies may not exceed this many bytes.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True, slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    """The raw (still percent-encoded) request path.  Routing matches
    against it as-is; :meth:`Router.resolve` percent-decodes the named
    groups it captures — exactly once — so an encoded ``%2F`` inside a
    path parameter cannot alter which route matches."""
    params: Mapping[str, str]
    """Decoded query-string parameters (last value wins per key)."""
    headers: Mapping[str, str]
    """Header fields, keys lower-cased."""
    body: bytes

    def flag(self, name: str, default: bool) -> bool:
        """A boolean query parameter (``true``/``false``, ``1``/``0``)."""
        raw = self.params.get(name)
        if raw is None:
            return default
        lowered = raw.lower()
        if lowered in ("1", "true", "yes"):
            return True
        if lowered in ("0", "false", "no"):
            return False
        raise ValueError(f"query parameter {name!r} must be boolean, got {raw!r}")


@dataclass(frozen=True, slots=True)
class Response:
    """One buffered HTTP response."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"

    @classmethod
    def json(cls, payload: Mapping[str, Any], status: int = 200) -> "Response":
        """A JSON response from an encoded wire payload."""
        return cls(status=status, body=dumps(payload).encode("utf-8"))

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        """The uniform error body: ``{"error": status, "message": ...}``."""
        return cls.json({"error": status, "message": message}, status=status)


@dataclass(frozen=True, slots=True)
class EventStream:
    """A server-sent-events response: an async iterator of event frames.

    The server writes the SSE headers, then one ``data: <json>\\n\\n``
    frame per item the iterator yields, draining after each so frames
    reach slow consumers promptly.  An item starting with ``:`` is
    written verbatim as an SSE comment frame (heartbeats).  The
    iterator's ``finally`` blocks run on disconnect, which is where
    handlers unsubscribe.
    """

    frames: AsyncIterator[str]


Handler = Callable[[Request, Mapping[str, str]], Awaitable[Union[Response, EventStream]]]


@dataclass(frozen=True, slots=True)
class Route:
    """One routing rule: method + path pattern + handler."""

    method: str
    pattern: "re.Pattern[str]"
    handler: Handler
    name: str
    """Metric label — ``serve.latency.<name>`` times this route."""


class Router:
    """Ordered route table with 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, path_pattern: str, name: str, handler: Handler) -> None:
        """Register a route.

        Args:
            method: Upper-case HTTP method.
            path_pattern: Anchored regex for the path; named groups become
                path parameters (e.g. ``r"/jobs/(?P<job_id>[^/]+)"``).
            name: Metric label for the route's latency histogram.
            handler: The coroutine handling matching requests.
        """
        self._routes.append(
            Route(
                method=method,
                pattern=re.compile(f"^{path_pattern}$"),
                handler=handler,
                name=name,
            )
        )

    def resolve(
        self, method: str, path: str
    ) -> Union[tuple[Route, dict[str, str]], Response]:
        """The matching route and its path params, or a 404/405 response."""
        path_matched = False
        for route in self._routes:
            match = route.pattern.match(path)
            if match is None:
                continue
            path_matched = True
            if route.method == method:
                return route, {
                    key: unquote(value)
                    for key, value in match.groupdict().items()
                }
        if path_matched:
            return Response.error(405, f"method {method} not allowed for {path}")
        return Response.error(404, f"no route for {path}")


@dataclass(slots=True)
class HttpServer:
    """The asyncio server loop around a :class:`Router`."""

    router: Router
    host: str = "127.0.0.1"
    port: int = 0
    _server: Optional["asyncio.Server"] = None
    _streams: "set[asyncio.Task[None]]" = field(default_factory=set)

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, cancel in-flight SSE streams, then wait.

        Stream tasks must be cancelled *before* ``wait_closed()``: on
        Python 3.12+ ``wait_closed()`` waits for every connection
        handler to finish, and SSE handlers block on their subscriber
        queue until the actor stops — which happens only after this
        method returns — so waiting first would deadlock shutdown
        whenever a stream subscriber is connected.
        """
        if self._server is not None:
            self._server.close()
        for task in list(self._streams):
            task.cancel()
        if self._streams:
            await asyncio.gather(*self._streams, return_exceptions=True)
        self._streams.clear()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            outcome = await self._read_request(reader)
            if isinstance(outcome, Response):
                await self._write_response(writer, outcome)
                return
            request = outcome
            resolved = self.router.resolve(request.method, request.path)
            if isinstance(resolved, Response):
                await self._write_response(writer, resolved)
                return
            route, path_params = resolved
            started = time.perf_counter()
            try:
                result = await route.handler(request, path_params)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - boundary: map to 500
                result = _error_response(error)
            if obs_enabled():
                histogram(f"serve.latency.{route.name}", unit="seconds").observe(
                    time.perf_counter() - started
                )
                counter("serve.requests", unit="requests").inc()
            if isinstance(result, EventStream):
                await self._write_stream(writer, result)
            else:
                await self._write_response(writer, result)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown tears streaming connections down by cancelling
            # their tasks (see stop()); that is normal teardown, not an
            # error to surface through the event loop's handler.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Union[Request, Response]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return Response.error(413, "request head too large")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                raise
            return Response.error(400, "truncated request head")
        if len(head) > MAX_HEADER_BYTES:
            return Response.error(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return Response.error(400, f"malformed request line {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, separator, value = line.partition(":")
            if not separator:
                return Response.error(400, f"malformed header {line!r}")
            headers[key.strip().lower()] = value.strip()
        path, _, query = target.partition("?")
        params = dict(parse_qsl(query, keep_blank_values=True))
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                return Response.error(400, "bad Content-Length")
            if length < 0:
                return Response.error(400, "bad Content-Length")
            if length > MAX_BODY_BYTES:
                return Response.error(413, "request body too large")
            if length:
                body = await reader.readexactly(length)
        return Request(
            method=method,
            path=path,
            params=params,
            headers=headers,
            body=body,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + response.body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, stream: EventStream
    ) -> None:
        """Stream SSE frames; tracked so :meth:`stop` can cancel them."""
        task = asyncio.current_task()
        if task is not None:
            self._streams.add(task)
        try:
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1"))
            await writer.drain()
            iterator = stream.frames
            try:
                async for frame in iterator:
                    payload = frame if frame.startswith(":") else f"data: {frame}"
                    writer.write(f"{payload}\n\n".encode("utf-8"))
                    await writer.drain()
            finally:
                await iterator.aclose()  # type: ignore[attr-defined]
        finally:
            if task is not None:
                self._streams.discard(task)


def _error_response(error: Exception) -> Response:
    """Map a handler exception to the uniform error body.

    ``ValueError`` (wire validation, query validation, bad parameters)
    is the client's fault → 400; ``KeyError`` is a missing resource →
    404; ``RuntimeError`` (frozen engine, stopped actor) is a state
    conflict → 409; anything else is a server bug → 500.
    """
    if isinstance(error, ValueError):
        return Response.error(400, str(error))
    if isinstance(error, KeyError):
        message = error.args[0] if error.args else str(error)
        return Response.error(404, str(message))
    if isinstance(error, RuntimeError):
        return Response.error(409, str(error))
    return Response.error(500, f"{type(error).__name__}: {error}")
