"""repro.obs — zero-dependency observability for the query engine.

Three small layers, all stdlib-only:

* :mod:`repro.obs.tracing` — nested :class:`Span` context managers with
  monotonic timers, aggregated per nesting path by the process-wide
  :data:`TRACER`;
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms (:data:`REGISTRY`);
* :mod:`repro.obs.export` — dict / JSON / pretty-table exporters plus the
  schema-versioned ``BENCH_*.json`` baseline helpers used by
  ``benchmarks/runner.py``.

Instrumentation is **off by default** and costs ~nothing while off: every
site goes through :func:`span` (returns a shared no-op) or guards with
:func:`obs_enabled` (one attribute read).  Switch it on per process with
:func:`enable` or the ``REPRO_OBS=1`` environment variable:

.. code-block:: python

    from repro import obs

    obs.enable()
    engine.interval_topk(t0, t1, k=10)
    print(obs.format_table())      # per-phase timings + counters
    obs.reset()                    # next measurement starts clean

Span names and their paper anchors are catalogued in
``docs/observability.md``; the invariant that tracing never perturbs
query results or ``FlowEngine.stats()`` is enforced by ``tests/obs/``.
"""

from .export import (
    OBS_SCHEMA_VERSION,
    bench_baseline,
    format_table,
    merge_snapshot_dicts,
    parse_snapshot,
    snapshot_dict,
    snapshot_json,
    write_baseline,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
)
from .tracing import (
    NOOP_SPAN,
    Span,
    SpanStats,
    TRACER,
    Tracer,
    disable,
    enable,
    obs_enabled,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "OBS_SCHEMA_VERSION",
    "REGISTRY",
    "Span",
    "SpanStats",
    "TRACER",
    "Tracer",
    "bench_baseline",
    "counter",
    "disable",
    "enable",
    "format_table",
    "gauge",
    "histogram",
    "merge_snapshot_dicts",
    "obs_enabled",
    "parse_snapshot",
    "reset",
    "snapshot_dict",
    "snapshot_json",
    "span",
    "write_baseline",
]


def reset() -> None:
    """Drop all collected spans and zero all metrics (process-wide).

    Registrations (metric names, units, histogram boundaries) survive;
    only the collected values are cleared, so a workload can be measured
    repeatedly from a clean slate.
    """
    TRACER.reset()
    REGISTRY.reset()
