"""The metrics registry: counters, gauges and fixed-bucket histograms.

Where spans answer *"where did the time go?"*, metrics answer *"how often
did X happen?"* — delta probes in the AR-tree, monitor ticks, cache hits
mirrored from :class:`~repro.core.context.EvaluationStats`.  A process-wide
:data:`REGISTRY` holds every metric by name; the module-level helpers
(:func:`counter`, :func:`gauge`, :func:`histogram`) get-or-create on it.

Determinism is a design requirement (baselines are diffed):

* histogram bucket boundaries are **fixed at creation** and part of the
  metric's identity — two runs of the same workload produce bucket counts
  that compare equal, never "adaptive" bins that drift;
* :meth:`MetricsRegistry.export` orders metrics by name, so serialized
  output is byte-stable for identical runs.

Like spans, metrics observe and never influence: no engine code path may
branch on a metric value.  Instrumentation sites guard their increments
with :func:`repro.obs.obs_enabled`, so the disabled mode costs one flag
read per site.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Union

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

#: Default histogram boundaries for durations in seconds: 100 µs … 10 s,
#: roughly one bucket per 2.5x step.  Fixed so exported bucket counts are
#: comparable across runs and machines.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count (events, records, probes).

    Attributes:
        name: Registry-unique metric name (dotted lower-case).
        unit: What one increment means (``"records"``, ``"probes"`` …).
    """

    __slots__ = ("name", "unit", "_value")

    kind = "counter"

    def __init__(self, name: str, unit: str = "count") -> None:
        self.name = name
        self.unit = unit
        self._value = 0.0

    @property
    def value(self) -> float:
        """The accumulated total since creation or the last reset."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter.

        Args:
            amount: Non-negative increment (default 1).

        Raises:
            ValueError: If ``amount`` is negative — counters only grow;
                use a :class:`Gauge` for values that move both ways.
        """
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def reset(self) -> None:
        """Zero the counter (registration and unit are kept)."""
        self._value = 0.0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping of the metric's state."""
        return {"kind": self.kind, "unit": self.unit, "value": self._value}


class Gauge:
    """A point-in-time value (cache occupancy, delta size).

    Attributes:
        name: Registry-unique metric name.
        unit: The value's unit (``"entries"``, ``"bytes"`` …).
    """

    __slots__ = ("name", "unit", "_value")

    kind = "gauge"

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._value = 0.0

    @property
    def value(self) -> float:
        """The last value set (0 until first :meth:`set`)."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current value.

        Args:
            value: The new reading; any finite float.
        """
        self._value = float(value)

    def reset(self) -> None:
        """Return the gauge to 0."""
        self._value = 0.0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping of the metric's state."""
        return {"kind": self.kind, "unit": self.unit, "value": self._value}


class Histogram:
    """A distribution over fixed, immutable bucket boundaries.

    An observation ``v`` lands in the first bucket whose boundary is
    ``>= v``; values above the last boundary land in the implicit
    overflow bucket, so ``len(counts) == len(boundaries) + 1``.

    Attributes:
        name: Registry-unique metric name.
        unit: Unit of observed values (``"seconds"`` by default).
        boundaries: The inclusive upper bounds, strictly increasing.
    """

    __slots__ = ("name", "unit", "boundaries", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        unit: str = "seconds",
        boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if not boundaries:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if any(b >= a for b, a in zip(boundaries, boundaries[1:])):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing"
            )
        self.name = name
        self.unit = unit
        self.boundaries = tuple(float(b) for b in boundaries)
        self._counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        """How many values were observed."""
        return self._count

    @property
    def sum(self) -> float:
        """The sum of all observed values."""
        return self._sum

    @property
    def counts(self) -> tuple[int, ...]:
        """Per-bucket observation counts (last entry is the overflow)."""
        return tuple(self._counts)

    def observe(self, value: float) -> None:
        """Record one value.

        Args:
            value: The observation, in the histogram's unit.
        """
        # bisect_left makes boundaries inclusive upper bounds: a value
        # equal to boundary i lands in bucket i, anything above the last
        # boundary in the overflow bucket.
        self._counts[bisect_left(self.boundaries, value)] += 1
        self._sum += value
        self._count += 1

    def reset(self) -> None:
        """Zero counts and sum (boundaries are immutable identity)."""
        self._counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._count = 0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping of the metric's state."""
        return {
            "kind": self.kind,
            "unit": self.unit,
            "boundaries": list(self.boundaries),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A name-keyed collection of metrics with deterministic export.

    The process-wide instance is :data:`REGISTRY`; tests create their own.
    Metric accessors are get-or-create: the first call fixes the metric's
    kind (and a histogram's boundaries); later calls must agree.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        """Metrics in name order (deterministic)."""
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def _get_or_create(self, name: str, factory: "type[Any]", **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {factory.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str, unit: str = "count") -> Counter:
        """Get or create the counter ``name``.

        Args:
            name: Metric name (dotted lower-case).
            unit: Unit recorded on first creation.

        Returns:
            The (shared) counter instance.

        Raises:
            TypeError: If ``name`` already names a gauge or histogram.
        """
        return self._get_or_create(name, Counter, unit=unit)

    def gauge(self, name: str, unit: str = "") -> Gauge:
        """Get or create the gauge ``name``.

        Args:
            name: Metric name.
            unit: Unit recorded on first creation.

        Returns:
            The (shared) gauge instance.

        Raises:
            TypeError: If ``name`` already names another metric kind.
        """
        return self._get_or_create(name, Gauge, unit=unit)

    def histogram(
        self,
        name: str,
        unit: str = "seconds",
        boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name``.

        Args:
            name: Metric name.
            unit: Unit of observations.
            boundaries: Inclusive upper bucket bounds, strictly
                increasing; fixed at creation.

        Returns:
            The (shared) histogram instance.

        Raises:
            TypeError: If ``name`` already names another metric kind.
            ValueError: If the metric exists with different boundaries —
                bucket identity is part of determinism.
        """
        metric = self._get_or_create(
            name, Histogram, unit=unit, boundaries=boundaries
        )
        if metric.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.boundaries!r}"
            )
        return metric

    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every metric's state; registrations and units are kept."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop all registrations (a from-scratch registry)."""
        self._metrics.clear()

    def export(self) -> dict[str, dict[str, Any]]:
        """All metrics as a name-sorted, JSON-ready mapping.

        Returns:
            ``{name: {"kind": ..., "unit": ..., ...}}`` with keys in
            sorted order — identical runs export identical mappings.
        """
        return {
            name: self._metrics[name].as_dict()
            for name in sorted(self._metrics)
        }


#: The process-wide registry all instrumentation sites report to.
REGISTRY = MetricsRegistry()


def counter(name: str, unit: str = "count") -> Counter:
    """``REGISTRY.counter(...)`` — the call-site shorthand."""
    return REGISTRY.counter(name, unit=unit)


def gauge(name: str, unit: str = "") -> Gauge:
    """``REGISTRY.gauge(...)`` — the call-site shorthand."""
    return REGISTRY.gauge(name, unit=unit)


def histogram(
    name: str,
    unit: str = "seconds",
    boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
) -> Histogram:
    """``REGISTRY.histogram(...)`` — the call-site shorthand."""
    return REGISTRY.histogram(name, unit=unit, boundaries=boundaries)
