"""Exporters: observability snapshots to dict, JSON and pretty tables.

One **snapshot** bundles a tracer's span rows and a registry's metrics
under a schema version, so downstream tooling (the bench runner, CI
artifact diffing, a notebook) can consume a single stable shape:

.. code-block:: python

    {
        "schema_version": 1,
        "spans": [
            {"path": ["query.interval.join", "ur.build.gap"],
             "count": 42, "total_seconds": 0.31, ...},
            ...
        ],
        "metrics": {
            "artree.delta_probes": {"kind": "counter", "unit": "probes",
                                    "value": 12.0},
            ...
        },
    }

The same schema version gates the ``BENCH_*.json`` baseline files
``benchmarks/runner.py`` writes (see :func:`bench_baseline` /
:func:`write_baseline` and ``docs/observability.md`` for the full field
catalogue).  :func:`parse_snapshot` round-trips what the serializers
produce and rejects unknown schema versions, so a reader can never
silently misinterpret an old baseline.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from .metrics import REGISTRY, MetricsRegistry
from .tracing import TRACER, Tracer

__all__ = [
    "OBS_SCHEMA_VERSION",
    "bench_baseline",
    "format_table",
    "merge_snapshot_dicts",
    "parse_snapshot",
    "snapshot_dict",
    "snapshot_json",
    "write_baseline",
]

#: Version stamped into every exported snapshot and ``BENCH_*.json``
#: baseline.  Bump on any backwards-incompatible field change.
OBS_SCHEMA_VERSION = 1


def snapshot_dict(
    tracer: Tracer | None = None, registry: MetricsRegistry | None = None
) -> dict[str, Any]:
    """The current spans + metrics as one JSON-ready mapping.

    Args:
        tracer: Tracer to read (the process-wide :data:`TRACER` when
            omitted).
        registry: Registry to read (the process-wide :data:`REGISTRY`
            when omitted).

    Returns:
        A ``{"schema_version", "spans", "metrics"}`` mapping; span rows
        are path-sorted and metrics name-sorted, so identical runs
        produce identical structures.
    """
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    return {
        "schema_version": OBS_SCHEMA_VERSION,
        "spans": [stats.as_dict() for stats in tracer.snapshot()],
        "metrics": registry.export(),
    }


def snapshot_json(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    indent: int | None = 2,
) -> str:
    """:func:`snapshot_dict`, serialized to JSON text.

    Args:
        tracer: Tracer to read (process-wide default when omitted).
        registry: Registry to read (process-wide default when omitted).
        indent: JSON indentation (``None`` for compact output).

    Returns:
        JSON text with sorted keys (byte-stable for identical runs).
    """
    return json.dumps(
        snapshot_dict(tracer, registry), indent=indent, sort_keys=True
    )


def merge_snapshot_dicts(
    snapshots: "Sequence[Mapping[str, Any]]",
) -> dict[str, Any]:
    """Fold per-process snapshots into one fleet-wide snapshot.

    A sharded engine running shards in worker processes collects one
    :func:`snapshot_dict` per process (each process has its own tracer
    and registry); this merges them into the same shape, so baselines
    and reports read identically for in-process and multi-process runs.

    Merge rules, per span path and per metric name:

    * **spans** — ``count`` and ``total_seconds`` sum; ``min_seconds`` is
      the minimum over rows that observed anything, ``max_seconds`` the
      maximum.
    * **counters** — values sum.
    * **histograms** — per-bucket counts, ``sum`` and ``count`` add
      elementwise; bucket ``boundaries`` must agree exactly (they are
      part of the metric's identity).
    * **gauges** — the maximum value wins: gauges report occupancy-style
      levels, and the fleet-wide high-water mark is the conservative
      summary.

    Args:
        snapshots: Snapshot mappings from :func:`snapshot_dict` (at least
            one).

    Returns:
        The merged ``{"schema_version", "spans", "metrics"}`` mapping,
        span rows path-sorted and metrics name-sorted.

    Raises:
        ValueError: If no snapshots are given, schema versions disagree
            with this module's, a metric name maps to different kinds or
            units, or histogram boundaries differ.
    """
    if not snapshots:
        raise ValueError("merge_snapshot_dicts needs at least one snapshot")
    spans: dict[tuple[str, ...], dict[str, Any]] = {}
    metrics: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        version = snapshot.get("schema_version")
        if version != OBS_SCHEMA_VERSION:
            raise ValueError(
                f"cannot merge snapshot schema_version {version!r} "
                f"(this merger supports {OBS_SCHEMA_VERSION})"
            )
        for row in snapshot["spans"]:
            path = tuple(row["path"])
            merged = spans.get(path)
            if merged is None:
                spans[path] = dict(row)
                continue
            merged["total_seconds"] += row["total_seconds"]
            if row["count"]:
                if merged["count"]:
                    merged["min_seconds"] = min(
                        merged["min_seconds"], row["min_seconds"]
                    )
                else:
                    merged["min_seconds"] = row["min_seconds"]
                merged["max_seconds"] = max(
                    merged["max_seconds"], row["max_seconds"]
                )
            merged["count"] += row["count"]
        for name, payload in snapshot["metrics"].items():
            merged = metrics.get(name)
            if merged is None:
                metrics[name] = dict(payload)
                continue
            if merged["kind"] != payload["kind"]:
                raise ValueError(
                    f"metric {name!r} is a {merged['kind']} in one snapshot "
                    f"and a {payload['kind']} in another"
                )
            if merged["unit"] != payload["unit"]:
                raise ValueError(
                    f"metric {name!r} mixes units "
                    f"{merged['unit']!r} and {payload['unit']!r}"
                )
            if payload["kind"] == "counter":
                merged["value"] += payload["value"]
            elif payload["kind"] == "gauge":
                merged["value"] = max(merged["value"], payload["value"])
            else:
                if merged["boundaries"] != payload["boundaries"]:
                    raise ValueError(
                        f"histogram {name!r} bucket boundaries differ "
                        "between snapshots"
                    )
                merged["counts"] = [
                    a + b
                    for a, b in zip(merged["counts"], payload["counts"])
                ]
                merged["sum"] += payload["sum"]
                merged["count"] += payload["count"]
    return {
        "schema_version": OBS_SCHEMA_VERSION,
        "spans": [spans[path] for path in sorted(spans)],
        "metrics": {name: metrics[name] for name in sorted(metrics)},
    }


def parse_snapshot(text: str) -> dict[str, Any]:
    """Parse JSON produced by :func:`snapshot_json` back into a mapping.

    Args:
        text: The JSON document.

    Returns:
        The snapshot mapping (same shape as :func:`snapshot_dict`).

    Raises:
        ValueError: If the document is not an object, lacks the expected
            keys, or carries an unsupported ``schema_version``.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("snapshot must be a JSON object")
    version = payload.get("schema_version")
    if version != OBS_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema_version {version!r} "
            f"(this reader supports {OBS_SCHEMA_VERSION})"
        )
    if "spans" not in payload or "metrics" not in payload:
        raise ValueError("snapshot lacks 'spans'/'metrics'")
    return payload


def format_table(
    tracer: Tracer | None = None, registry: MetricsRegistry | None = None
) -> str:
    """A human-readable trace + metrics report (fixed-width tables).

    Span rows are indented by nesting depth, so the output reads as the
    span hierarchy documented in ``docs/observability.md``; each row
    shows call count, total and mean milliseconds.

    Args:
        tracer: Tracer to read (process-wide default when omitted).
        registry: Registry to read (process-wide default when omitted).

    Returns:
        The report text ('' plus a note when nothing was collected).
    """
    tracer = tracer if tracer is not None else TRACER
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    rows = tracer.snapshot()
    lines.append(f"{'span':<48} | {'count':>7} | {'total ms':>10} | {'mean ms':>9}")
    lines.append("-" * 84)
    if not rows:
        lines.append("(no spans collected)")
    for stats in rows:
        label = "  " * (stats.depth - 1) + stats.name
        total_ms = stats.total_seconds * 1000.0
        mean_ms = total_ms / stats.count if stats.count else 0.0
        lines.append(
            f"{label:<48} | {stats.count:>7} | {total_ms:>10.2f} | {mean_ms:>9.3f}"
        )
    lines.append("")
    lines.append(f"{'metric':<48} | {'kind':>9} | value")
    lines.append("-" * 84)
    metrics = registry.export()
    if not metrics:
        lines.append("(no metrics recorded)")
    for name, payload in metrics.items():
        if payload["kind"] == "histogram":
            value = f"n={payload['count']} sum={payload['sum']:.6g}"
        else:
            value = f"{payload['value']:g}"
        unit = f" {payload['unit']}" if payload["unit"] else ""
        lines.append(f"{name:<48} | {payload['kind']:>9} | {value}{unit}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Bench baselines (the BENCH_*.json files benchmarks/runner.py emits)
# ----------------------------------------------------------------------


def bench_baseline(
    name: str,
    machine: Mapping[str, Any],
    scale: float,
    params: Mapping[str, Any],
    results: Mapping[str, Any],
    stats: Mapping[str, Any] | None = None,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Assemble one schema-versioned ``BENCH_<name>.json`` payload.

    Args:
        name: Baseline name (becomes the ``BENCH_<name>.json`` stem).
        machine: Host provenance (platform, python, cpu count, …).
        scale: Workload scale relative to the paper's populations.
        params: The workload parameters that shaped the run.
        results: The measured numbers (timings, speedups, …).
        stats: Optional ``FlowEngine.stats()`` counters of the run.
        tracer: Tracer whose per-phase span rows to embed (process-wide
            default when omitted; pass a quiesced tracer for clean runs).
        registry: Registry whose metrics to embed (process-wide default).

    Returns:
        The JSON-ready baseline mapping, including the observability
        snapshot under ``"observability"``.
    """
    return {
        "schema_version": OBS_SCHEMA_VERSION,
        "name": name,
        "machine": dict(machine),
        "scale": scale,
        "params": dict(params),
        "results": dict(results),
        "stats": dict(stats) if stats is not None else {},
        "observability": snapshot_dict(tracer, registry),
    }


def write_baseline(path: str, payload: Mapping[str, Any]) -> None:
    """Write one baseline payload as stable, sorted-key JSON.

    Args:
        path: Destination file (conventionally ``BENCH_<name>.json``).
        payload: A mapping from :func:`bench_baseline`.

    Raises:
        ValueError: If the payload is missing its schema version — a
            baseline without one can never be read back safely.
    """
    if payload.get("schema_version") != OBS_SCHEMA_VERSION:
        raise ValueError("baseline payload lacks the current schema_version")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
