"""Query-phase tracing: nested spans aggregated by path.

A :class:`Span` is a context manager timing one phase of query processing
(``query.snapshot.join`` → ``candidates.snapshot`` → ``ur.snapshot`` →
``presence.quadrature`` …).  Spans nest: the process-wide :data:`TRACER`
keeps the stack of active span names, and on exit the elapsed time is
accumulated into per-*path* statistics — ``("query.interval.join",
"ur.build.gap")`` is a different row than ``("query.interval.iterative",
"ur.build.gap")``, which is exactly what per-phase cost attribution needs.

Timing uses :func:`time.perf_counter` (monotonic), so span durations are
never negative and an enclosing span's total always dominates the sum of
its children's totals.

**Cost when off.**  Instrumentation defaults to *disabled*: the
module-level flag (:func:`obs_enabled`, toggled by :func:`enable` /
:func:`disable` or the ``REPRO_OBS=1`` environment variable at import
time) makes :func:`span` return a shared no-op context manager, so an
instrumented hot path pays one function call, one attribute read and an
empty ``with`` block — no clock read, no allocation, no dict access.
``benchmarks/runner.py`` measures this as the ``obs_overhead`` baseline.

Spans observe; they never influence.  No query result, cache key or
stats counter may depend on tracer state — `tests/obs/` asserts top-k
bit-identity and `FlowEngine.stats()` equality with tracing on and off.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "NOOP_SPAN",
    "Span",
    "SpanStats",
    "TRACER",
    "Tracer",
    "disable",
    "enable",
    "obs_enabled",
    "span",
]

#: Environment variable that switches instrumentation on at import time.
OBS_ENV_VAR = "REPRO_OBS"


class _Flag:
    """The module-level on/off switch (a slot, so reads are one lookup)."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


_FLAG = _Flag(os.environ.get(OBS_ENV_VAR, "").strip().lower() in {"1", "true", "yes", "on"})


def obs_enabled() -> bool:
    """Whether instrumentation is currently collecting.

    Returns:
        ``True`` when spans time and metrics record; ``False`` in the
        no-op default mode.
    """
    return _FLAG.enabled


def enable() -> None:
    """Switch instrumentation on (spans time, metrics record)."""
    _FLAG.enabled = True


def disable() -> None:
    """Switch instrumentation off (the ~zero-overhead default)."""
    _FLAG.enabled = False


@dataclass
class SpanStats:
    """Aggregated timings of one span *path* (a tuple of nested names).

    One row of a trace: how often the path was entered, and the total /
    min / max wall-clock seconds spent inside it (children included).
    """

    path: tuple[str, ...]
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one completed span occurrence into the aggregate.

        Args:
            seconds: Elapsed time of the occurrence; clamped at zero so a
                pathological clock can never produce negative totals.
        """
        seconds = max(seconds, 0.0)
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def name(self) -> str:
        """The leaf span name (last path element)."""
        return self.path[-1]

    @property
    def depth(self) -> int:
        """Nesting depth (1 for a top-level span)."""
        return len(self.path)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready mapping (used by the exporters and baselines)."""
        return {
            "path": list(self.path),
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class Span:
    """A live span: times the enclosed block and reports to its tracer.

    Created via :meth:`Tracer.span` / the module-level :func:`span`; not
    meant to be constructed directly.  Re-entering a span instance is not
    supported — create a new one per ``with`` block.
    """

    __slots__ = ("_tracer", "_name", "_started")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._tracer._push(self._name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._started
        self._tracer._pop(self._name, elapsed)


class _NoopSpan:
    """The shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The singleton no-op span (one object for the whole process).
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects span timings, aggregated by nesting path.

    A tracer owns a stack of active span names and a mapping from path
    tuples to :class:`SpanStats`.  The process-wide default is
    :data:`TRACER`; independent tracers can be created for tests.
    """

    def __init__(self) -> None:
        self._stack: list[str] = []
        self._stats: dict[tuple[str, ...], SpanStats] = {}

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def span(self, name: str) -> "Span | _NoopSpan":
        """A context manager timing ``name`` under the current nesting.

        Args:
            name: The span name; dotted lower-case by convention
                (``"ur.build.gap"``).

        Returns:
            A live :class:`Span` when instrumentation is enabled, the
            shared no-op span otherwise.
        """
        if not _FLAG.enabled:
            return NOOP_SPAN
        return Span(self, name)

    # ------------------------------------------------------------------
    # Internal bookkeeping (called by Span)
    # ------------------------------------------------------------------

    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, name: str, elapsed: float) -> None:
        # Exits must match enters even if the flag was toggled mid-span:
        # a live Span always pops what it pushed.
        path = tuple(self._stack)
        if not self._stack or self._stack[-1] != name:  # pragma: no cover
            raise RuntimeError(
                f"span nesting violated: exiting {name!r} but the active "
                f"stack is {self._stack!r}"
            )
        self._stack.pop()
        stats = self._stats.get(path)
        if stats is None:
            stats = SpanStats(path=path)
            self._stats[path] = stats
        stats.observe(elapsed)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    @property
    def active_depth(self) -> int:
        """How many spans are currently open (0 when idle)."""
        return len(self._stack)

    def snapshot(self) -> list[SpanStats]:
        """The collected rows, sorted by path (deterministic order).

        Returns:
            A list of copies — mutating them does not affect the tracer.
        """
        return [
            SpanStats(
                path=stats.path,
                count=stats.count,
                total_seconds=stats.total_seconds,
                min_seconds=stats.min_seconds,
                max_seconds=stats.max_seconds,
            )
            for _, stats in sorted(self._stats.items())
        ]

    def reset(self) -> None:
        """Drop all collected statistics (open spans stay on the stack)."""
        self._stats.clear()


#: The process-wide tracer all instrumentation sites report to.
TRACER = Tracer()


def span(name: str) -> "Span | _NoopSpan":
    """A span on the process-wide :data:`TRACER` (no-op when disabled).

    This is *the* instrumentation entry point the engine, algorithms,
    context and index call — ``docs/observability.md`` catalogues the
    names they use.

    Args:
        name: The span name (dotted lower-case).

    Returns:
        A context manager; enter/exit it around the phase to time.
    """
    if not _FLAG.enabled:
        return NOOP_SPAN
    return Span(TRACER, name)
