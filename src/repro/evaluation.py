"""Quality evaluation of flow estimates against simulated ground truth.

The paper evaluates query *performance*; with a simulator we can also
measure how well the probabilistic flows track reality.  Given a
:class:`~repro.datagen.dataset.Dataset` (which carries ground-truth
trajectories), this module computes:

* **occupancy truth** — how many objects actually were in each POI at a
  time point / during a window;
* **ranking agreement** — precision@k and Spearman rank correlation of the
  flow ranking vs the truth ranking;
* **presence calibration** — presence values are probabilities ("object o
  is in POI p with probability φ"); a reliability table bins predictions
  and compares each bin's mean against the empirical frequency, the
  standard calibration diagnostic.

These metrics quantify the model's documented coarseness (symbolic
tracking uses no negative information, so flows smear toward central
locations — see ``examples/shopping_mall.py``) instead of hand-waving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .core.engine import FlowEngine
from .core.states import interval_contexts, snapshot_contexts
from .datagen.dataset import Dataset
from .geometry import near_zero

__all__ = [
    "CalibrationBin",
    "snapshot_truth",
    "interval_truth",
    "precision_at_k",
    "spearman_correlation",
    "snapshot_presence_calibration",
    "interval_presence_calibration",
]


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------


def snapshot_truth(dataset: Dataset, t: float) -> dict[str, int]:
    """How many objects truly are inside each POI at time ``t``."""
    counts: dict[str, int] = {}
    for trajectory in dataset.trajectories:
        if not trajectory.t_start <= t <= trajectory.t_end:
            continue
        position = trajectory.position_at(t)
        for poi in dataset.pois:
            if poi.polygon.contains(position):
                counts[poi.poi_id] = counts.get(poi.poi_id, 0) + 1
    return counts


def interval_truth(
    dataset: Dataset, t_start: float, t_end: float, step: float = 5.0
) -> dict[str, int]:
    """How many objects truly visited each POI during the window."""
    counts: dict[str, int] = {}
    for trajectory in dataset.trajectories:
        for poi in dataset.pois:
            if trajectory.ever_inside(poi.polygon, t_start, t_end, step=step):
                counts[poi.poi_id] = counts.get(poi.poi_id, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Ranking agreement
# ----------------------------------------------------------------------


def precision_at_k(
    predicted: Mapping[str, float], truth: Mapping[str, int], k: int
) -> float:
    """Fraction of the predicted top-k that is in the true top-k.

    Ties are broken by key for determinism.  ``k`` is clamped to the
    number of keys available.
    """
    if k < 1:
        raise ValueError("k must be positive")
    keys = sorted(set(predicted) | set(truth))
    if not keys:
        return 1.0
    k = min(k, len(keys))
    top_predicted = set(
        sorted(keys, key=lambda key: (-predicted.get(key, 0.0), key))[:k]
    )
    top_truth = set(sorted(keys, key=lambda key: (-truth.get(key, 0), key))[:k])
    return len(top_predicted & top_truth) / k


def spearman_correlation(
    predicted: Mapping[str, float], truth: Mapping[str, int]
) -> float:
    """Spearman rank correlation over the union of keys (0.0 if degenerate)."""
    keys = sorted(set(predicted) | set(truth))
    if len(keys) < 2:
        return 0.0
    a = np.array([predicted.get(key, 0.0) for key in keys], dtype=float)
    b = np.array([float(truth.get(key, 0)) for key in keys], dtype=float)

    def ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values, kind="stable")
        result = np.empty(len(values), dtype=float)
        result[order] = np.arange(len(values), dtype=float)
        # Average ranks of ties.
        for value in np.unique(values):
            mask = values == value
            result[mask] = result[mask].mean()
        return result

    ra, rb = ranks(a), ranks(b)
    if near_zero(float(ra.std())) or near_zero(float(rb.std())):
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


# ----------------------------------------------------------------------
# Presence calibration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationBin:
    """One reliability-diagram bin."""

    lower: float
    upper: float
    count: int
    mean_predicted: float
    empirical_frequency: float

    @property
    def gap(self) -> float:
        """Calibration error of this bin (prediction minus reality)."""
        return self.mean_predicted - self.empirical_frequency


def _calibrate(
    pairs: list[tuple[float, bool]], bins: int
) -> list[CalibrationBin]:
    if bins < 1:
        raise ValueError("bins must be positive")
    edges = np.linspace(0.0, 1.0, bins + 1)
    result = []
    predictions = np.array([p for p, _ in pairs], dtype=float)
    outcomes = np.array([o for _, o in pairs], dtype=float)
    for i in range(bins):
        low, high = float(edges[i]), float(edges[i + 1])
        if i == bins - 1:
            mask = (predictions >= low) & (predictions <= high)
        else:
            mask = (predictions >= low) & (predictions < high)
        count = int(mask.sum())
        if count == 0:
            continue
        result.append(
            CalibrationBin(
                lower=low,
                upper=high,
                count=count,
                mean_predicted=float(predictions[mask].mean()),
                empirical_frequency=float(outcomes[mask].mean()),
            )
        )
    return result


def snapshot_presence_calibration(
    dataset: Dataset,
    engine: FlowEngine,
    times: Sequence[float],
    bins: int = 10,
) -> list[CalibrationBin]:
    """Reliability of snapshot presence as a probability.

    For every (object, POI) pair at every probe time, the predicted
    presence is compared with whether the object truly was in the POI.
    Pairs with zero predicted presence and a false outcome are skipped
    (they are trivially correct and would swamp the first bin).
    """
    pairs: list[tuple[float, bool]] = []
    for t in times:
        for context in snapshot_contexts(engine.artree, t):
            # Regions and presences go through the engine's evaluation
            # context, so calibration sees exactly the cached values the
            # queries use (and reuses them instead of re-deriving).
            region = engine.ctx.snapshot_region(context)
            fingerprint = engine.ctx.snapshot_fingerprint(context)
            truth_position = dataset.trajectory_of(context.object_id).position_at(t)
            for poi in dataset.pois:
                presence = engine.ctx.presence(region, poi, fingerprint)
                actually_inside = poi.polygon.contains(truth_position)
                if near_zero(presence) and not actually_inside:
                    continue
                pairs.append((presence, actually_inside))
    return _calibrate(pairs, bins)


def interval_presence_calibration(
    dataset: Dataset,
    engine: FlowEngine,
    windows: Sequence[tuple[float, float]],
    bins: int = 10,
    step: float = 5.0,
) -> list[CalibrationBin]:
    """Reliability of interval presence as a visit probability."""
    pairs: list[tuple[float, bool]] = []
    for t_start, t_end in windows:
        for context in interval_contexts(engine.artree, t_start, t_end):
            uncertainty = engine.ctx.interval_uncertainty(context)
            fingerprint = engine.ctx.interval_fingerprint(uncertainty)
            trajectory = dataset.trajectory_of(context.object_id)
            for poi in dataset.pois:
                presence = engine.ctx.presence(
                    uncertainty.region, poi, fingerprint
                )
                visited = trajectory.ever_inside(
                    poi.polygon, t_start, t_end, step=step
                )
                if near_zero(presence) and not visited:
                    continue
                pairs.append((presence, visited))
    return _calibrate(pairs, bins)
